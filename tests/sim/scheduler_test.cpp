// Unit tests for the discrete-event scheduler: ordering, determinism,
// block/wake semantics, timeouts and deadlock detection.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace msvm::sim {
namespace {

TEST(Scheduler, SingleActorRunsToCompletion) {
  Scheduler s;
  int ran = 0;
  s.spawn("a", [&] { ran = 1; });
  s.run();
  EXPECT_EQ(ran, 1);
}

TEST(Scheduler, EarliestClockRunsFirst) {
  Scheduler s;
  std::vector<std::string> order;
  s.spawn("late", [&] { order.push_back("late"); }, /*start=*/100);
  s.spawn("early", [&] { order.push_back("early"); }, /*start=*/10);
  s.spawn("mid", [&] { order.push_back("mid"); }, /*start=*/50);
  s.run();
  EXPECT_EQ(order, (std::vector<std::string>{"early", "mid", "late"}));
}

TEST(Scheduler, TieBrokenByActorId) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.spawn("a" + std::to_string(i), [&, i] { order.push_back(i); }, 42);
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, YieldInterleavesByVirtualTime) {
  // Actor A advances 10 ps per step, B advances 25 ps per step. After each
  // step they yield; the merged event order must follow virtual time.
  Scheduler s;
  std::vector<std::pair<char, TimePs>> trace;
  s.spawn("A", [&] {
    Actor* self = s.current();
    for (int i = 0; i < 4; ++i) {
      self->advance(10);
      trace.emplace_back('A', self->clock());
      s.yield();
    }
  });
  s.spawn("B", [&] {
    Actor* self = s.current();
    for (int i = 0; i < 2; ++i) {
      self->advance(25);
      trace.emplace_back('B', self->clock());
      s.yield();
    }
  });
  s.run();
  // Each resume picks the actor with the smallest clock, and a resumed
  // actor commits one whole step before yielding; skew is therefore
  // bounded by a single step. Trace: A runs first (tie at t=0, lower id),
  // commits A@10 and yields; B (still at 0) commits B@25; then A@20, A@30;
  // B@50 runs before A's last step because A had reached 30 > 25.
  std::vector<std::pair<char, TimePs>> expect = {
      {'A', 10}, {'B', 25}, {'A', 20}, {'A', 30}, {'B', 50}, {'A', 40}};
  EXPECT_EQ(trace, expect);
  // Per-actor times are strictly monotone regardless of interleaving.
  TimePs last_a = 0;
  TimePs last_b = 0;
  for (const auto& [who, t] : trace) {
    TimePs& last = who == 'A' ? last_a : last_b;
    EXPECT_GT(t, last);
    last = t;
  }
}

TEST(Scheduler, MaybeYieldSkipsSwitchWhenAlreadyEarliest) {
  Scheduler s;
  bool switched = true;
  s.spawn("solo", [&] {
    s.current()->advance(5);
    switched = s.maybe_yield();
  });
  s.run();
  EXPECT_FALSE(switched);  // no other actor could be earlier
}

TEST(Scheduler, MaybeYieldSwitchesWhenSomeoneEarlier) {
  Scheduler s;
  std::vector<char> order;
  s.spawn("ahead", [&] {
    s.current()->advance(100);
    EXPECT_TRUE(s.maybe_yield());  // "behind" is at t=0
    order.push_back('a');
  });
  s.spawn("behind", [&] { order.push_back('b'); });
  s.run();
  EXPECT_EQ(order, (std::vector<char>{'b', 'a'}));
}

TEST(Scheduler, BlockAndWakeTransfersTimestamp) {
  Scheduler s;
  TimePs resumed_at = 0;
  WakeReason reason{};
  Actor* sleeper = nullptr;
  sleeper = &s.spawn("sleeper", [&] {
    reason = s.block();
    resumed_at = s.current()->clock();
  });
  s.spawn("waker", [&] {
    s.current()->advance(500);
    s.wake(*sleeper, s.current()->clock());
  });
  s.run();
  EXPECT_EQ(reason, WakeReason::kWoken);
  EXPECT_EQ(resumed_at, 500u);  // clock pulled forward to the wake time
}

TEST(Scheduler, WakeNeverMovesClockBackwards) {
  Scheduler s;
  TimePs resumed_at = 0;
  Actor* sleeper = nullptr;
  sleeper = &s.spawn("sleeper", [&] {
    s.current()->advance(1000);
    s.block();
    resumed_at = s.current()->clock();
  });
  s.spawn("waker", [&] {
    // Waker is behind the sleeper; the wake must not rewind the sleeper.
    s.current()->advance(10);
    s.wake(*sleeper, s.current()->clock());
  });
  s.run();
  EXPECT_EQ(resumed_at, 1000u);
}

TEST(Scheduler, BlockUntilTimesOut) {
  Scheduler s;
  WakeReason reason{};
  TimePs at = 0;
  s.spawn("sleeper", [&] {
    reason = s.block_until(777);
    at = s.current()->clock();
  });
  s.run();
  EXPECT_EQ(reason, WakeReason::kTimeout);
  EXPECT_EQ(at, 777u);
}

TEST(Scheduler, BlockUntilWokenBeforeDeadline) {
  Scheduler s;
  WakeReason reason{};
  TimePs at = 0;
  Actor* sleeper = nullptr;
  sleeper = &s.spawn("sleeper", [&] {
    reason = s.block_until(1'000'000);
    at = s.current()->clock();
  });
  s.spawn("waker", [&] {
    s.current()->advance(300);
    s.wake(*sleeper, s.current()->clock());
  });
  s.run();
  EXPECT_EQ(reason, WakeReason::kWoken);
  EXPECT_EQ(at, 300u);
  // The stale timeout entry must not resurrect the actor; run() returning
  // with all actors finished proves it was discarded.
}

TEST(Scheduler, WakeOnScheduledActorIsNoOp) {
  Scheduler s;
  int runs = 0;
  Actor* a = nullptr;
  a = &s.spawn("a", [&] {
    ++runs;
    s.yield();
    ++runs;
  });
  s.spawn("b", [&] {
    s.current()->advance(1);
    s.wake(*a, 0);  // a is scheduled, not blocked
  });
  s.run();
  EXPECT_EQ(runs, 2);
}

TEST(Scheduler, DeadlockDetected) {
  Scheduler s;
  s.spawn("a", [&] { s.block(); });
  s.spawn("b", [&] { s.block(); });
  EXPECT_THROW(s.run(), DeadlockError);
}

TEST(Scheduler, PingPongBetweenTwoActors) {
  // The canonical lost-wakeup-safe pattern every higher layer (mailbox,
  // SVM ownership transfer) uses: set a flag, then wake; the waiter
  // re-checks the flag around block().
  Scheduler s;
  int volleys = 0;
  bool ball_at_a = false;
  bool ball_at_b = false;
  Actor* a = nullptr;
  Actor* b = nullptr;
  a = &s.spawn("a", [&] {
    for (int i = 0; i < 10; ++i) {
      s.current()->advance(10);
      ball_at_b = true;
      s.wake(*b, s.current()->clock());
      while (!ball_at_a) s.block();
      ball_at_a = false;
    }
  });
  b = &s.spawn("b", [&] {
    for (int i = 0; i < 10; ++i) {
      while (!ball_at_b) s.block();
      ball_at_b = false;
      s.current()->advance(10);
      ++volleys;
      ball_at_a = true;
      s.wake(*a, s.current()->clock());
    }
  });
  s.run();
  EXPECT_EQ(volleys, 10);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  auto run_once = [] {
    Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      s.spawn("w" + std::to_string(i), [&, i] {
        for (int k = 0; k < 5; ++k) {
          s.current()->advance((i * 37 + k * 11) % 23 + 1);
          order.push_back(i * 100 + k);
          s.yield();
        }
      });
    }
    s.run();
    return order;
  };
  const auto first = run_once();
  for (int rep = 0; rep < 3; ++rep) EXPECT_EQ(run_once(), first);
}

TEST(Scheduler, SpawnFromInsideActor) {
  Scheduler s;
  std::vector<std::string> order;
  s.spawn("parent", [&] {
    order.push_back("parent");
    s.current()->advance(10);
    s.spawn("child", [&] { order.push_back("child"); },
            s.current()->clock());
    s.yield();
    order.push_back("parent2");
  });
  s.run();
  // Tie at t=10 is broken by actor id, so the parent resumes before the
  // child runs.
  EXPECT_EQ(order,
            (std::vector<std::string>{"parent", "parent2", "child"}));
}

TEST(Scheduler, WakeStormKeepsHeapBounded) {
  // Regression test for the stale-entry pathology: the old scheduler
  // queued a fresh generation-stamped heap entry on every wake() and
  // left the superseded one behind as a tombstone, so a wake storm on
  // blocked-with-timeout actors grew the heap without bound until the
  // pops caught up. The indexed heap re-keys in place: at any instant
  // there is at most one entry per actor, so the heap can never exceed
  // the actor count no matter how many wakes land.
  Scheduler s;
  constexpr int kSleepers = 32;
  constexpr u64 kRounds = 200;
  std::vector<Actor*> sleepers;
  u64 woken = 0;
  for (int i = 0; i < kSleepers; ++i) {
    sleepers.push_back(&s.spawn("sleeper" + std::to_string(i), [&] {
      while (s.current()->clock() < 1'000'000) {
        if (s.block_until(s.current()->clock() + 10'000) ==
            WakeReason::kWoken) {
          ++woken;
        }
      }
    }));
  }
  std::size_t max_heap = 0;
  s.spawn("storm", [&] {
    u32 lcg = 0xdecafu;
    for (u64 r = 0; r < kRounds; ++r) {
      // A burst of wakes, many re-keying the same still-blocked actors
      // repeatedly — exactly the churn that used to pile up tombstones.
      for (int k = 0; k < kSleepers * 4; ++k) {
        lcg = lcg * 1664525u + 1013904223u;
        Actor& target = *sleepers[lcg % kSleepers];
        s.wake(target, s.current()->clock() + 1 + lcg % 97);
        max_heap = std::max(max_heap, s.heap_size());
      }
      s.current()->advance(4'000);
      s.yield();
    }
  });
  s.run();
  EXPECT_GT(woken, 0u);
  // +1 for the storm actor itself. The old implementation peaked at
  // thousands of entries under this load.
  EXPECT_LE(max_heap, static_cast<std::size_t>(kSleepers) + 1);
}

// ---- sharded event lanes ----

TEST(SchedulerLanes, LanesDrainInDeterministicOrder) {
  // Two actors per lane, all yielding every 10 ps with a 100 ps
  // lookahead window: within a window lanes drain in fixed lane order,
  // each in local (time, id) order — the same trace every run.
  std::vector<std::string> runs[2];
  for (auto& order : runs) {
    Scheduler s;
    s.configure_lanes(2, 100);
    for (int lane = 0; lane < 2; ++lane) {
      for (int i = 0; i < 2; ++i) {
        const std::string name =
            "L" + std::to_string(lane) + "a" + std::to_string(i);
        s.spawn(name, [&, name] {
          for (int step = 0; step < 5; ++step) {
            s.current()->advance(10);
            order.push_back(name);
            s.yield();
          }
        }, /*start=*/0, Fiber::kDefaultStackBytes, lane);
      }
    }
    s.run();
    EXPECT_EQ(order.size(), 20u);
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(SchedulerLanes, SingleLaneMatchesLegacyOrder) {
  // configure_lanes(1, ...) must reproduce the classic single-heap event
  // order exactly: global (time, id) interleaving across all actors.
  auto trace_with = [](bool configure) {
    Scheduler s;
    if (configure) s.configure_lanes(1, 50);
    std::vector<std::pair<std::string, TimePs>> trace;
    s.spawn("A", [&] {
      for (int i = 0; i < 4; ++i) {
        s.current()->advance(10);
        trace.emplace_back("A", s.current()->clock());
        s.yield();
      }
    });
    s.spawn("B", [&] {
      for (int i = 0; i < 2; ++i) {
        s.current()->advance(25);
        trace.emplace_back("B", s.current()->clock());
        s.yield();
      }
    });
    s.run();
    return trace;
  };
  EXPECT_EQ(trace_with(true), trace_with(false));
}

TEST(SchedulerLanes, CrossLaneWakeAndUtilizationCounters) {
  Scheduler s;
  s.configure_lanes(4, 100);
  EXPECT_EQ(s.num_lanes(), 4);
  bool woken = false;
  Actor& sleeper = s.spawn("sleeper", [&] {
    if (s.block() == WakeReason::kWoken) woken = true;
  }, /*start=*/0, Fiber::kDefaultStackBytes, /*lane=*/3);
  // Starts several lookahead windows later, so the sleeper is already
  // parked when the wake crosses from lane 1 to lane 3.
  s.spawn("waker", [&] { s.wake(sleeper, s.current()->clock()); },
          /*start=*/500, Fiber::kDefaultStackBytes, /*lane=*/1);
  s.run();
  EXPECT_TRUE(woken);
  EXPECT_GT(s.windows_opened(), 0u);
  u64 dispatched = 0;
  for (int i = 0; i < s.num_lanes(); ++i) dispatched += s.lane_dispatched(i);
  EXPECT_GE(dispatched, 3u);  // sleeper twice (start + wake), waker once
}

TEST(SchedulerLanes, MultiLaneDeadlockReportsInsteadOfCrashing) {
  // All lanes dry with an actor still blocked: the window cursor must
  // stay in range so the run loop's re-probe reports the deadlock.
  Scheduler s;
  s.configure_lanes(2, 50);
  s.spawn("stuck", [&] { s.block(); }, /*start=*/0,
          Fiber::kDefaultStackBytes, /*lane=*/1);
  EXPECT_THROW(s.run(), DeadlockError);
}

}  // namespace
}  // namespace msvm::sim
