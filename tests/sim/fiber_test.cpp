// Unit tests for the hand-rolled fiber context switch. These run first in
// the suite because everything else in the simulator sits on top of them.
#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <vector>

namespace msvm::sim {
namespace {

TEST(Fiber, RunsToCompletionOnFirstResume) {
  int calls = 0;
  Fiber f([&] { ++calls; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldSuspendsAndResumeContinues) {
  std::vector<int> trace;
  Fiber f([&] {
    trace.push_back(1);
    Fiber::yield_to_main();
    trace.push_back(2);
    Fiber::yield_to_main();
    trace.push_back(3);
  });
  f.resume();
  trace.push_back(10);
  f.resume();
  trace.push_back(20);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 10, 2, 20, 3}));
}

TEST(Fiber, CurrentIsNullInMainAndSelfInside) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* observed = reinterpret_cast<Fiber*>(1);
  Fiber f([&] { observed = Fiber::current(); });
  f.resume();
  EXPECT_EQ(observed, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, LocalVariablesSurviveSuspension) {
  // Exercises callee-saved register and stack preservation: the loop state
  // must survive many suspensions interleaved with other fibers.
  constexpr int kIters = 1000;
  long sum_a = 0;
  long sum_b = 0;
  Fiber a([&] {
    long local = 0;
    for (int i = 0; i < kIters; ++i) {
      local += i;
      Fiber::yield_to_main();
    }
    sum_a = local;
  });
  Fiber b([&] {
    long local = 0;
    for (int i = 0; i < kIters; ++i) {
      local += 2 * i;
      Fiber::yield_to_main();
    }
    sum_b = local;
  });
  while (!a.finished() || !b.finished()) {
    if (!a.finished()) a.resume();
    if (!b.finished()) b.resume();
  }
  const long expect = static_cast<long>(kIters - 1) * kIters / 2;
  EXPECT_EQ(sum_a, expect);
  EXPECT_EQ(sum_b, 2 * expect);
}

TEST(Fiber, FloatingPointStateSurvivesSwitches) {
  double result = 0.0;
  Fiber f([&] {
    double acc = 1.0;
    for (int i = 1; i <= 16; ++i) {
      acc = acc * 1.5 + static_cast<double>(i);
      Fiber::yield_to_main();
    }
    result = acc;
  });
  // Pollute xmm registers between resumptions from the main context.
  volatile double noise = 0.0;
  while (!f.finished()) {
    noise = noise * 3.25 + 7.125;
    f.resume();
  }
  double expect = 1.0;
  for (int i = 1; i <= 16; ++i) expect = expect * 1.5 + i;
  EXPECT_DOUBLE_EQ(result, expect);
}

TEST(Fiber, DeepCallStackWithinStackLimit) {
  // Recursion deep inside the fiber must work and be able to yield from
  // the innermost frame (this is the transparent-page-fault property).
  int reached = 0;
  std::function<void(int)> recurse = [&](int depth) {
    std::array<char, 512> pad{};
    pad[0] = static_cast<char>(depth);
    if (depth > 0) {
      recurse(depth - 1);
    } else {
      reached = 1;
      Fiber::yield_to_main();
      reached = 2;
    }
    // Keep `pad` alive across the yield.
    ASSERT_EQ(pad[0], static_cast<char>(depth));
  };
  Fiber f([&] { recurse(100); });  // ~50 KiB of frames, within 256 KiB
  f.resume();
  EXPECT_EQ(reached, 1);
  f.resume();
  EXPECT_EQ(reached, 2);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ManyFibersInterleaveIndependently) {
  constexpr int kFibers = 48;  // one per SCC core
  constexpr int kSteps = 50;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> counters(kFibers, 0);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&counters, i] {
      for (int s = 0; s < kSteps; ++s) {
        counters[i] += i + 1;
        Fiber::yield_to_main();
      }
    }));
  }
  bool any = true;
  while (any) {
    any = false;
    for (auto& f : fibers) {
      if (!f->finished()) {
        f->resume();
        any = true;
      }
    }
  }
  for (int i = 0; i < kFibers; ++i) {
    EXPECT_EQ(counters[i], (i + 1) * kSteps) << "fiber " << i;
  }
}

TEST(Fiber, EntryDestructorRunsAtCompletion) {
  struct Flagger {
    bool* flag;
    explicit Flagger(bool* f) : flag(f) {}
    ~Flagger() { *flag = true; }
  };
  bool destroyed = false;
  auto flagger = std::make_shared<Flagger>(&destroyed);
  Fiber f([flagger] { (void)flagger; });
  flagger.reset();
  EXPECT_FALSE(destroyed);  // fiber closure still owns it
  f.resume();
  EXPECT_TRUE(destroyed);  // released when the fiber finished
}

}  // namespace
}  // namespace msvm::sim
