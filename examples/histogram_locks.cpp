// Lock-based sharing demo: a shared histogram merged under striped SVM
// locks — the canonical Lazy Release Consistency pattern where every
// access to shared data is protected by a lock (paper Section 6.2).
//
//   $ ./build/examples/histogram_locks [cores] [strong|lazy]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "workloads/histogram.hpp"

using namespace msvm;

int main(int argc, char** argv) {
  const int cores = argc > 1 ? std::atoi(argv[1]) : 8;
  const bool strong = argc > 2 && std::strcmp(argv[2], "strong") == 0;

  workloads::HistogramParams p;
  p.bins = 128;
  p.samples_per_core = 2048;

  const auto model =
      strong ? svm::Model::kStrong : svm::Model::kLazyRelease;
  std::printf("shared histogram: %u bins, %u samples/core, %d cores, "
              "%s model\n",
              p.bins, p.samples_per_core, cores,
              strong ? "strong" : "lazy-release");

  const auto result = run_histogram(p, model, cores);
  const auto expect = workloads::histogram_reference(p, cores);

  u64 max_bin = 0;
  bool correct = result.bins == expect;
  for (const u64 b : result.bins) max_bin = b > max_bin ? b : max_bin;

  std::printf("merge phase: %.3f ms simulated\n", ps_to_ms(result.elapsed));
  std::printf("total samples binned: %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(result.total_samples),
              static_cast<unsigned long long>(
                  static_cast<u64>(cores) * p.samples_per_core),
              correct ? "exact match with reference" : "MISMATCH");

  // Tiny ASCII sketch of the distribution.
  std::printf("\nhistogram sketch (16 buckets of 8 bins):\n");
  for (u32 g = 0; g < 16; ++g) {
    u64 sum = 0;
    for (u32 b = g * 8; b < (g + 1) * 8; ++b) sum += result.bins[b];
    std::printf("%3u-%3u |", g * 8, g * 8 + 7);
    const int stars = static_cast<int>(sum * 40 / (max_bin * 8));
    for (int s = 0; s < stars; ++s) std::printf("*");
    std::printf(" %llu\n", static_cast<unsigned long long>(sum));
  }
  return correct ? 0 : 1;
}
