// Coherency-domain demo (paper Section 1: "a dynamic partitioning of
// the SCC's computing resources into several coherency domains"): the
// 48-core die is split into three independent shared-memory machines,
// each running its own workload with its own consistency model events —
// concurrently, with zero interference.
//
//   $ ./build/examples/coherency_domains
#include <cstdio>

#include "cluster/cluster.hpp"

using namespace msvm;

int main() {
  cluster::ClusterConfig cfg;
  cfg.chip.num_cores = 48;
  // Three domains: a 16-core "web tier", a 24-core "compute tier" and an
  // 8-core "logging tier" — the cluster-on-chip picture of the paper.
  std::vector<int> web;
  std::vector<int> compute;
  std::vector<int> logging;
  for (int c = 0; c < 16; ++c) web.push_back(c);
  for (int c = 16; c < 40; ++c) compute.push_back(c);
  for (int c = 40; c < 48; ++c) logging.push_back(c);
  cfg.domains = {web, compute, logging};

  cluster::Cluster cluster(cfg);
  double compute_result = 0.0;
  u64 web_requests = 0;
  u64 log_lines = 0;

  cluster.run([&](cluster::Node& n) {
    svm::Svm& svm = n.svm();
    const u64 base = svm.alloc(16 * 4096);
    svm.barrier();
    if (n.core_id() < 16) {
      // "Web tier": shared request counter under an SVM lock.
      for (int i = 0; i < 25; ++i) {
        svm.lock_acquire(0);
        svm.write<u64>(base, svm.read<u64>(base) + 1);
        svm.lock_release(0);
      }
      svm.barrier();
      if (n.rank() == 0) web_requests = svm.read<u64>(base);
    } else if (n.core_id() < 40) {
      // "Compute tier": each rank sums into its own slot; rank 0 reduces.
      double acc = 0;
      for (int i = 0; i < 1000; ++i) {
        acc += static_cast<double>((n.rank() + 1) * i % 97);
        n.core().compute_cycles(8);
      }
      svm.write<double>(base + 64 + 8 * static_cast<u64>(n.rank()), acc);
      svm.barrier();
      if (n.rank() == 0) {
        for (int r = 0; r < n.size(); ++r) {
          compute_result +=
              svm.read<double>(base + 64 + 8 * static_cast<u64>(r));
        }
      }
    } else {
      // "Logging tier": append-only counter per rank.
      for (int i = 0; i < 10; ++i) {
        svm.write<u64>(base + 4096 + 8 * static_cast<u64>(n.rank()),
                       static_cast<u64>(i + 1));
      }
      svm.barrier();
      if (n.rank() == 0) {
        for (int r = 0; r < n.size(); ++r) {
          log_lines +=
              svm.read<u64>(base + 4096 + 8 * static_cast<u64>(r));
        }
      }
    }
    svm.barrier();
  });

  std::printf("web tier     (16 cores): %llu requests counted\n",
              static_cast<unsigned long long>(web_requests));
  std::printf("compute tier (24 cores): partial-sum reduction = %.1f\n",
              compute_result);
  std::printf("logging tier ( 8 cores): %llu lines appended\n",
              static_cast<unsigned long long>(log_lines));
  std::printf("all three shared-memory machines ran concurrently on one "
              "chip\n(simulated makespan %.3f ms)\n",
              ps_to_ms(cluster.makespan()));
  return web_requests == 16 * 25 && log_lines == 8 * 10 ? 0 : 1;
}
