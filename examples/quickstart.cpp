// Quickstart: boot a simulated SCC, run an SPMD program on 4 cores, and
// share memory through the SVM system.
//
//   $ ./build/examples/quickstart
//
// Walks through the core API: collective allocation, first-touch
// placement, barriers, and reading another core's data under Lazy
// Release Consistency.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/report.hpp"

using namespace msvm;

int main() {
  // 1. Describe the machine + software stack. Defaults model the paper's
  //    SCC configuration (48 P54C cores at 533 MHz; we use 4 of them).
  cluster::ClusterConfig cfg;
  cfg.chip.num_cores = 48;
  cfg.members = {0, 1, 24, 47};  // any subset of the die works
  cfg.svm.model = svm::Model::kLazyRelease;

  cluster::Cluster cluster(cfg);

  // 2. Run the same program on every member core (SPMD, like RCCE).
  cluster.run([](cluster::Node& n) {
    svm::Svm& svm = n.svm();

    // Collective: every member calls alloc with the same size and gets
    // the same virtual base. No physical memory exists yet.
    const u64 counters = svm.alloc(4096);

    // First touch: each core writes its own slot, which allocates the
    // page near the first toucher's memory controller.
    svm.write<u64>(counters + 8 * static_cast<u64>(n.rank()),
                   100 + static_cast<u64>(n.rank()));

    // Barrier = release + acquire: flushes the write-combine buffer and
    // invalidates stale cache lines, so everyone sees everyone's slot.
    svm.barrier();

    u64 sum = 0;
    for (int r = 0; r < n.size(); ++r) {
      sum += svm.read<u64>(counters + 8 * static_cast<u64>(r));
    }

    std::printf("core %2d (rank %d): sum of all slots = %llu at t=%.3f us\n",
                n.core_id(), n.rank(),
                static_cast<unsigned long long>(sum),
                ps_to_us(n.core().now()));
    svm.barrier();
  });

  // 3. Inspect what the hardware and the SVM system actually did.
  std::printf("\n%s", cluster::format_report(cluster).c_str());
  return 0;
}
