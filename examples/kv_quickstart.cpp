// Serving-tier quickstart: run the sharded SVM key-value store under an
// open-loop Zipfian workload on 8 simulated SCC cores and print the
// latency percentiles the run measured.
//
//   $ ./build/examples/kv_quickstart
//
// Every core plays both roles: a client generating GET/PUT/SCAN traffic
// (Poisson arrivals, Zipf(0.99) key popularity, a quiet/burst phase
// schedule), and a server executing requests for the shards it homes.
// Requests travel over the on-die mailbox network; every reply carries a
// fold of the value words that the client re-verifies against the
// store's derived-value scheme, so a wrong answer anywhere in the
// SVM/mailbox stack is detected rather than absorbed.
#include <cstdio>

#include "serve/kv_serving.hpp"

using namespace msvm;

int main() {
  // 1. Shape the workload. The store shards its keys across all member
  //    cores (one shard per member by default); the generator's stream
  //    is a pure function of (seed, rank), so this program prints the
  //    same numbers on every run and every machine.
  serve::KvServingParams p;
  p.seed = 42;
  p.store.seed = 42;
  p.store.num_keys = 2048;
  p.gen.num_keys = 2048;
  p.gen.zipf_theta = 0.99;     // YCSB-style hot-key skew
  p.gen.read_fraction = 0.90;  // 90% GET
  p.gen.scan_fraction = 0.02;  // 2% short SCANs, the rest PUTs
  p.gen.rate_rps = 25'000;     // per-core offered load
  p.gen.load_ps = 1 * kPsPerMs;
  p.gen.phase_mults = {0.5, 1.0, 2.0, 1.0};  // night, day, spike, day
  p.gen.phase_ps = 250 * kPsPerUs;

  // 2. Run it: 8 cores under the Strong model (each shard's pages stay
  //    owned by its home, so serving is local cache hits + mailbox
  //    round trips).
  const serve::KvServingResult r =
      serve::run_kv_serving(p, svm::Model::kStrong, 8);

  // 3. The result aggregates every core's tallies and merges the
  //    per-request latency histograms (intended-arrival to completion:
  //    open loop, so queueing delay is measured, not hidden).
  std::printf("issued      %llu (%llu GET / %llu PUT / %llu SCAN)\n",
              static_cast<unsigned long long>(r.issued),
              static_cast<unsigned long long>(r.gets),
              static_cast<unsigned long long>(r.puts),
              static_cast<unsigned long long>(r.scans));
  std::printf("completed   %llu   wrong %llu   timeouts %llu\n",
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.wrong),
              static_cast<unsigned long long>(r.timeouts));
  std::printf("goodput     %.0f req/s (virtual time)\n", r.goodput_rps);
  std::printf("latency     p50 %5.2f us   p95 %5.2f us   p99 %5.2f us   "
              "p999 %5.2f us\n",
              static_cast<double>(r.latency.p50()) / kPsPerUs,
              static_cast<double>(r.latency.p95()) / kPsPerUs,
              static_cast<double>(r.latency.p99()) / kPsPerUs,
              static_cast<double>(r.latency.p999()) / kPsPerUs);
  return r.wrong == 0 ? 0 : 1;
}
