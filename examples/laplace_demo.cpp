// Heat-distribution demo: the paper's Laplace application on a choice of
// backend, with a correctness check against the host reference.
//
//   $ ./build/examples/laplace_demo [strong|lazy|ircce] [cores]
#include <cstdio>
#include <cstring>

#include "workloads/laplace.hpp"

using namespace msvm;

int main(int argc, char** argv) {
  const char* variant = argc > 1 ? argv[1] : "lazy";
  const int cores = argc > 2 ? std::atoi(argv[2]) : 8;

  workloads::LaplaceParams p;
  p.nx = 512;
  p.ny = 256;
  p.iterations = 8;

  std::printf("2-D Laplace %ux%u, %u iterations, %d cores, variant=%s\n",
              p.ny, p.nx, p.iterations, cores, variant);

  workloads::LaplaceResult r;
  if (std::strcmp(variant, "strong") == 0) {
    r = run_laplace_svm(p, svm::Model::kStrong, cores);
  } else if (std::strcmp(variant, "lazy") == 0) {
    r = run_laplace_svm(p, svm::Model::kLazyRelease, cores);
  } else if (std::strcmp(variant, "ircce") == 0) {
    r = run_laplace_ircce(p, cores);
  } else {
    std::fprintf(stderr, "unknown variant '%s'\n", variant);
    return 1;
  }

  const double expect = workloads::laplace_reference_checksum(p);
  const bool ok =
      std::abs(r.checksum - expect) <= 1e-9 * std::abs(expect);

  std::printf("simulated runtime : %.3f ms\n", ps_to_ms(r.elapsed));
  std::printf("checksum          : %.6f (reference %.6f) -> %s\n",
              r.checksum, expect, ok ? "OK" : "MISMATCH");
  std::printf("page faults       : %llu\n",
              static_cast<unsigned long long>(r.page_faults));
  std::printf("ownership acquires: %llu\n",
              static_cast<unsigned long long>(r.ownership_acquires));
  std::printf("WCB line flushes  : %llu\n",
              static_cast<unsigned long long>(r.wcb_flushes));
  std::printf("bytes messaged    : %llu\n",
              static_cast<unsigned long long>(r.bytes_messaged));
  return ok ? 0 : 1;
}
