// Read-only-region demo (paper Section 6.4): a shared-memory matrix
// multiply where the inputs are protected read-only after initialisation,
// unlocking the L2 cache and removing all ownership traffic on them —
// plus a demonstration of the protection fault a stray write triggers.
//
//   $ ./build/examples/matmul_readonly [n] [cores]
#include <cstdio>
#include <cstdlib>

#include "cluster/cluster.hpp"
#include "workloads/matmul.hpp"

using namespace msvm;

int main(int argc, char** argv) {
  workloads::MatmulParams p;
  p.n = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 64;
  const int cores = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("C = A x B, %ux%u doubles, %d cores, strong memory model\n",
              p.n, p.n, cores);

  p.protect_inputs = true;
  const auto with = run_matmul(p, svm::Model::kStrong, cores);
  p.protect_inputs = false;
  const auto without = run_matmul(p, svm::Model::kStrong, cores);
  // Third variant: no manual protect, but the read-replication directory
  // (an extension beyond the paper) — replicas appear on demand, no
  // collective protect call needed.
  p.read_replication = true;
  const auto repl = run_matmul(p, svm::Model::kStrong, cores);
  p.read_replication = false;
  const double expect = workloads::matmul_reference_checksum(p);

  auto correct = [&](const workloads::MatmulResult& r) {
    return std::abs(r.checksum - expect) < 1e-6 * expect ? "yes" : "NO";
  };
  std::printf("\n%-28s %14s %14s %14s\n", "", "protected", "unprotected",
              "replication");
  std::printf("%-28s %14.3f %14.3f %14.3f\n", "compute time [ms]",
              ps_to_ms(with.elapsed), ps_to_ms(without.elapsed),
              ps_to_ms(repl.elapsed));
  std::printf("%-28s %14llu %14llu %14llu\n", "L2 hits",
              static_cast<unsigned long long>(with.l2_hits),
              static_cast<unsigned long long>(without.l2_hits),
              static_cast<unsigned long long>(repl.l2_hits));
  std::printf("%-28s %14llu %14llu %14llu\n", "ownership transfers",
              static_cast<unsigned long long>(with.ownership_acquires),
              static_cast<unsigned long long>(without.ownership_acquires),
              static_cast<unsigned long long>(repl.ownership_acquires));
  std::printf("%-28s %14llu %14llu %14llu\n", "fault round-trips",
              static_cast<unsigned long long>(with.mail_roundtrips),
              static_cast<unsigned long long>(without.mail_roundtrips),
              static_cast<unsigned long long>(repl.mail_roundtrips));
  std::printf("%-28s %14s %14s %14s\n", "checksum correct", correct(with),
              correct(without), correct(repl));

  // Part 2: the debugging aid — writing to a protected region faults at
  // the *first* wrong access instead of corrupting the final result.
  std::printf("\nwrite-to-protected demo: ");
  cluster::ClusterConfig cfg;
  cfg.chip.num_cores = 48;
  cfg.members = {0, 1};
  cluster::Cluster cl(cfg);
  cl.run([](cluster::Node& n) {
    const u64 table = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u64>(table, 42);
    n.svm().barrier();
    n.svm().protect_readonly(table, 4096);
    if (n.rank() == 1) {
      try {
        n.svm().write<u64>(table, 7);  // bug: writing a lookup table
      } catch (const svm::SvmProtectionError& e) {
        std::printf("caught SvmProtectionError at vaddr 0x%llx — "
                    "bug detected at its first occurrence\n",
                    static_cast<unsigned long long>(e.vaddr()));
      }
    }
    n.svm().barrier();
  });
  return 0;
}
