// Inter-kernel communication demo: raw mailbox ping-pong between two
// cores of your choice, in both delivery modes — a miniature of the
// paper's Figure 6/7 benchmarks with per-sample output.
//
//   $ ./build/examples/mailbox_pingpong [core_a] [core_b]
#include <cstdio>
#include <cstdlib>

#include "sccsim/mesh.hpp"
#include "workloads/pingpong.hpp"

using namespace msvm;

int main(int argc, char** argv) {
  workloads::PingPongParams p;
  p.core_a = argc > 1 ? std::atoi(argv[1]) : 0;
  p.core_b = argc > 2 ? std::atoi(argv[2]) : 30;
  p.reps = 100;

  const int hops =
      scc::Topology::scc_default().hops_between_cores(p.core_a, p.core_b);
  std::printf("mailbox ping-pong core %d <-> core %d (%d mesh hops)\n",
              p.core_a, p.core_b, hops);

  p.use_ipi = false;
  const auto poll = run_mailbox_pingpong(p);
  std::printf("  polling : half round trip mean %.3f us (min %.3f, "
              "max %.3f), %llu slot checks\n",
              ps_to_us(poll.half_rtt_mean), ps_to_us(poll.half_rtt_min),
              ps_to_us(poll.half_rtt_max),
              static_cast<unsigned long long>(poll.slot_checks));

  p.use_ipi = true;
  const auto ipi = run_mailbox_pingpong(p);
  std::printf("  IPI     : half round trip mean %.3f us (min %.3f, "
              "max %.3f), %llu slot checks\n",
              ps_to_us(ipi.half_rtt_mean), ps_to_us(ipi.half_rtt_min),
              ps_to_us(ipi.half_rtt_max),
              static_cast<unsigned long long>(ipi.slot_checks));

  std::printf("\nwith two active cores polling wins (one slot to scan);\n"
              "the IPI path pays interrupt entry but scales to any core "
              "count\n(run bench/fig7_mailbox_cores for the full sweep).\n");
  return 0;
}
