#!/bin/sh
# Perf-regression gate: compares freshly generated BENCH_*.json medians
# against the checked-in baselines in bench/baselines/ and fails if any
# series median regressed by more than 5%.
#
# All gated series are times (us/ms medians of deterministic virtual-time
# runs), so "higher median" always means "slower". The simulator's
# virtual clock makes the numbers machine-independent: a clean build
# reproduces the baselines exactly, and the 5% margin only exists so an
# intentional remodelling (documented, with refreshed baselines) is the
# one way the numbers move.
#
# Usage: check_perf_regression.sh [baseline_dir] [candidate_dir]
#   baseline_dir   defaults to bench/baselines (relative to the repo root)
#   candidate_dir  defaults to build/bench (where the bench binaries ran)
set -u

BASE_DIR=${1:-bench/baselines}
CAND_DIR=${2:-build/bench}
TOLERANCE=${PERF_GATE_TOLERANCE:-1.05}

status=0
checked=0

for base in "$BASE_DIR"/BENCH_*.json; do
  [ -e "$base" ] || {
    echo "perf-gate: no baselines under $BASE_DIR" >&2
    exit 1
  }
  name=$(basename "$base")
  cand="$CAND_DIR/$name"
  if [ ! -f "$cand" ]; then
    echo "perf-gate: FAIL $name: candidate missing (bench not run?)" >&2
    status=1
    continue
  fi
  # Series lines look like:
  #   "strong_ms": {"count": 9, "median": 4.70232, "p95": 4.93}
  # First pass (FNR==NR) collects baseline medians, second compares.
  if ! awk -v tol="$TOLERANCE" -v file="$name" '
    /"median":/ {
      if (match($0, /"[A-Za-z0-9_.]+": *\{"count"/)) {
        series = substr($0, RSTART + 1)
        sub(/": *\{"count".*/, "", series)
        if (match($0, /"median": *[-+0-9.eE]+/)) {
          med = substr($0, RSTART, RLENGTH)
          sub(/"median": */, "", med)
          if (NR == FNR) {
            base[series] = med + 0
          } else if (series in base) {
            seen[series] = 1
            b = base[series]
            c = med + 0
            if (b > 0 && c > b * tol) {
              printf "perf-gate: FAIL %s %s: median %g -> %g (+%.1f%%)\n",
                     file, series, b, c, (c / b - 1) * 100
              bad = 1
            } else {
              printf "perf-gate: ok   %s %-24s %g -> %g\n",
                     file, series, b, c
            }
          }
        }
      }
    }
    END {
      for (s in base) {
        if (!(s in seen)) {
          printf "perf-gate: FAIL %s %s: series missing from candidate\n",
                 file, s
          bad = 1
        }
      }
      exit bad
    }' "$base" "$cand"; then
    status=1
  fi
  checked=$((checked + 1))
done

if [ "$checked" -eq 0 ]; then
  echo "perf-gate: no BENCH_*.json compared" >&2
  exit 1
fi
[ "$status" -eq 0 ] && echo "perf-gate: all $checked bench file(s) within ${TOLERANCE}x"
exit $status
