#!/bin/sh
# Perf-regression gate: compares freshly generated BENCH_*.json against
# the checked-in baselines in bench/baselines/ and fails on regressions.
#
# Two modes, selected per file:
#
#   virtual-time mode (every BENCH_*.json except simspeed): all gated
#   series are times (us/ms medians of deterministic virtual-time runs),
#   so "higher median" always means "slower". The simulator's virtual
#   clock makes the numbers machine-independent: a clean build reproduces
#   the baselines exactly, and the 5% margin only exists so an intentional
#   remodelling (documented, with refreshed baselines) is the one way the
#   numbers move.
#
#   host-throughput mode (BENCH_simspeed.json): series are host
#   events/sec medians — higher is better, and the absolute numbers vary
#   with the machine. The deterministic config fields (event counts,
#   makespans — everything but "seed" and "repeats") are compared
#   EXACTLY; the throughput medians only fail on a drop beyond the
#   generous noise margin (default: candidate < 0.75x baseline).
#
# Usage: check_perf_regression.sh [baseline_dir] [candidate_dir]
#   baseline_dir   defaults to bench/baselines (relative to the repo root)
#   candidate_dir  defaults to build/bench (where the bench binaries ran)
set -u

BASE_DIR=${1:-bench/baselines}
CAND_DIR=${2:-build/bench}
TOLERANCE=${PERF_GATE_TOLERANCE:-1.05}
HOST_DROP=${PERF_GATE_HOST_DROP:-0.75}

status=0
checked=0

for base in "$BASE_DIR"/BENCH_*.json; do
  [ -e "$base" ] || {
    echo "perf-gate: no baselines under $BASE_DIR" >&2
    exit 1
  }
  name=$(basename "$base")
  cand="$CAND_DIR/$name"
  if [ ! -f "$cand" ]; then
    echo "perf-gate: FAIL $name: candidate missing (bench not run?)" >&2
    status=1
    continue
  fi
  case "$name" in
  BENCH_simspeed.json)
    # Host-throughput mode. Config lines look like:
    #   "sched_events": 200000,
    # and series lines like the virtual-time mode below. Deterministic
    # config fields must match exactly; medians are higher-is-better
    # with a wide noise margin.
    if ! awk -v drop="$HOST_DROP" -v file="$name" '
      /^    "[A-Za-z0-9_.]+": [-+0-9.eE]+,?$/ && !/"median":/ {
        key = $0
        sub(/^    "/, "", key)
        sub(/".*/, "", key)
        if (key == "seed" || key == "repeats") next
        val = $0
        sub(/^[^:]*: */, "", val)
        sub(/,$/, "", val)
        if (NR == FNR) {
          basecfg[key] = val
        } else if (key in basecfg) {
          seencfg[key] = 1
          if (basecfg[key] != val) {
            printf "perf-gate: FAIL %s %s: deterministic field %s -> %s\n",
                   file, key, basecfg[key], val
            bad = 1
          }
        }
      }
      /"median":/ {
        if (match($0, /"[A-Za-z0-9_.]+": *\{"count"/)) {
          series = substr($0, RSTART + 1)
          sub(/": *\{"count".*/, "", series)
          if (match($0, /"median": *[-+0-9.eE]+/)) {
            med = substr($0, RSTART, RLENGTH)
            sub(/"median": */, "", med)
            if (NR == FNR) {
              base[series] = med + 0
            } else if (series in base) {
              seen[series] = 1
              b = base[series]
              c = med + 0
              if (b > 0 && c < b * drop) {
                printf "perf-gate: FAIL %s %s: median %g -> %g (%.1f%%)\n",
                       file, series, b, c, (c / b - 1) * 100
                bad = 1
              } else {
                printf "perf-gate: ok   %s %-28s %g -> %g\n",
                       file, series, b, c
              }
            }
          }
        }
      }
      END {
        for (s in base) {
          if (!(s in seen)) {
            printf "perf-gate: FAIL %s %s: series missing from candidate\n",
                   file, s
            bad = 1
          }
        }
        for (k in basecfg) {
          if (!(k in seencfg)) {
            printf "perf-gate: FAIL %s %s: config field missing\n",
                   file, k
            bad = 1
          }
        }
        exit bad
      }' "$base" "$cand"; then
      status=1
    fi
    ;;
  *)
    # Virtual-time mode. Series lines look like:
    #   "strong_ms": {"count": 9, "median": 4.70232, "p95": 4.93}
    # Most series are times (lower is better); series named like
    # throughputs or success counts (_rps, _per_ms, _verified, correct,
    # completed) gate in the other direction — a DROP beyond the margin
    # fails. Both directions share TOLERANCE: deterministic runs
    # reproduce the baselines exactly, so the margin only gives an
    # intentional remodelling one documented way to move the numbers.
    # First pass (FNR==NR) collects baseline medians, second compares.
    if ! awk -v tol="$TOLERANCE" -v file="$name" '
      function higher_is_better(s) {
        return s ~ /_rps$/ || s ~ /_per_ms$/ || s ~ /_verified$/ ||
               s ~ /(^|_)correct$/ || s ~ /(^|_)completed$/
      }
      /"median":/ {
        if (match($0, /"[A-Za-z0-9_.]+": *\{"count"/)) {
          series = substr($0, RSTART + 1)
          sub(/": *\{"count".*/, "", series)
          if (match($0, /"median": *[-+0-9.eE]+/)) {
            med = substr($0, RSTART, RLENGTH)
            sub(/"median": */, "", med)
            if (NR == FNR) {
              base[series] = med + 0
            } else if (series in base) {
              seen[series] = 1
              b = base[series]
              c = med + 0
              if (higher_is_better(series) ? (b > 0 && c * tol < b) \
                                           : (b > 0 && c > b * tol)) {
                printf "perf-gate: FAIL %s %s: median %g -> %g (%+.1f%%)\n",
                       file, series, b, c, (c / b - 1) * 100
                bad = 1
              } else {
                printf "perf-gate: ok   %s %-24s %g -> %g\n",
                       file, series, b, c
              }
            }
          }
        }
      }
      END {
        for (s in base) {
          if (!(s in seen)) {
            printf "perf-gate: FAIL %s %s: series missing from candidate\n",
                   file, s
            bad = 1
          }
        }
        exit bad
      }' "$base" "$cand"; then
      status=1
    fi
    ;;
  esac
  checked=$((checked + 1))
done

if [ "$checked" -eq 0 ]; then
  echo "perf-gate: no BENCH_*.json compared" >&2
  exit 1
fi
[ "$status" -eq 0 ] && echo "perf-gate: all $checked bench file(s) passed"
exit $status
