#!/usr/bin/env sh
# Include-layering check for the coherence-protocol core.
#
# src/svm/protocol/ is the transport-agnostic protocol layer: policies and
# the per-page state machine talk to the world through ProtocolEnv /
# MetaStore only. Any project include from outside that directory —
# sccsim, sim (fibers), mailbox, kernel, cluster, ... — would silently
# re-couple the layer to the simulator, so the check rejects every quoted
# project include that does not live under svm/protocol/ itself.
#
# CI runs this on every push; it is also registered as a ctest entry.
set -eu
cd "$(dirname "$0")/.."

violations=$(grep -rn '#include *"' src/svm/protocol |
  grep -v '#include *"svm/protocol/' || true)

if [ -n "$violations" ]; then
  echo "include-layering violation: src/svm/protocol/ must only include" >&2
  echo "svm/protocol/ headers and the C++ standard library, found:" >&2
  echo "$violations" >&2
  exit 1
fi

echo "include layering OK: src/svm/protocol/ is transport-agnostic"
