#!/bin/sh
# Determinism gate: runs a bench binary twice with identical arguments in
# separate scratch directories and byte-compares stdout plus every emitted
# BENCH_*.json. The simulation derives every number from virtual time, so
# any divergence between the two runs means nondeterminism leaked into the
# substrate (host-pointer ordering, uninitialised reads, wall-clock
# coupling) — the property every baseline byte-comparison in CI stands on.
#
# Usage: check_determinism.sh <bench binary> [bench args...]
#   With no bench args the historical fig9 invocation (--quick --seed=42)
#   is used. CI also points this at the scaling bench at a >48-core,
#   multi-lane configuration to pin the sharded event-lane scheduler.
set -u

BIN=${1:?usage: check_determinism.sh <bench binary> [bench args...]}
shift
[ $# -gt 0 ] || set -- --quick --seed=42

case "$BIN" in
/*) ;;
*) BIN=$(pwd)/$BIN ;;
esac
[ -x "$BIN" ] || {
  echo "determinism-gate: $BIN is not executable" >&2
  exit 1
}

TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT
mkdir "$TMP/run1" "$TMP/run2"

(cd "$TMP/run1" && "$BIN" "$@" > stdout.txt) || {
  echo "determinism-gate: first run failed" >&2
  exit 1
}
(cd "$TMP/run2" && "$BIN" "$@" > stdout.txt) || {
  echo "determinism-gate: second run failed" >&2
  exit 1
}

status=0
if ! cmp -s "$TMP/run1/stdout.txt" "$TMP/run2/stdout.txt"; then
  echo "determinism-gate: FAIL: stdout differs between two runs ($*)" >&2
  diff "$TMP/run1/stdout.txt" "$TMP/run2/stdout.txt" >&2
  status=1
fi

found=0
for a in "$TMP/run1"/BENCH_*.json; do
  [ -e "$a" ] || break
  found=1
  b="$TMP/run2/$(basename "$a")"
  if ! cmp -s "$a" "$b"; then
    echo "determinism-gate: FAIL: $(basename "$a") differs between two" \
         "runs ($*)" >&2
    diff "$a" "$b" >&2
    status=1
  fi
done
if [ "$found" -eq 0 ]; then
  echo "determinism-gate: no BENCH_*.json emitted by $BIN $*" >&2
  status=1
fi

[ "$status" -eq 0 ] &&
  echo "determinism-gate: stdout and BENCH_*.json byte-identical across" \
       "two runs ($(basename "$BIN") $*)"
exit $status
