#!/bin/sh
# Determinism gate: runs the fig9 Laplace bench twice with the same seed
# in separate scratch directories and byte-compares the emitted
# BENCH_fig9.json. The simulation derives every number from virtual time,
# so any divergence between the two runs means nondeterminism leaked into
# the substrate (host-pointer ordering, uninitialised reads, wall-clock
# coupling) — the property every baseline byte-comparison in CI stands on.
#
# Usage: check_determinism.sh <path-to-fig9_laplace> [--seed=N]
set -u

BIN=${1:?usage: check_determinism.sh <fig9_laplace binary> [--seed=N]}
SEED=${2:---seed=42}

case "$BIN" in
/*) ;;
*) BIN=$(pwd)/$BIN ;;
esac
[ -x "$BIN" ] || {
  echo "determinism-gate: $BIN is not executable" >&2
  exit 1
}

TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT
mkdir "$TMP/run1" "$TMP/run2"

(cd "$TMP/run1" && "$BIN" --quick "$SEED" >/dev/null) || {
  echo "determinism-gate: first run failed" >&2
  exit 1
}
(cd "$TMP/run2" && "$BIN" --quick "$SEED" >/dev/null) || {
  echo "determinism-gate: second run failed" >&2
  exit 1
}

if ! cmp -s "$TMP/run1/BENCH_fig9.json" "$TMP/run2/BENCH_fig9.json"; then
  echo "determinism-gate: FAIL: BENCH_fig9.json differs between two" \
       "runs with $SEED" >&2
  diff "$TMP/run1/BENCH_fig9.json" "$TMP/run2/BENCH_fig9.json" >&2
  exit 1
fi
echo "determinism-gate: BENCH_fig9.json byte-identical across two runs"
