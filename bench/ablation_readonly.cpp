// Ablation 4 — read-only memory regions (Section 6.4): after protecting
// the matmul inputs read-only, every core may keep them in its L2 and no
// ownership traffic is needed even under the Strong Memory Model.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "workloads/matmul.hpp"

using namespace msvm;

int main(int argc, char** argv) {
  bench::obs_setup(argc, argv);
  workloads::MatmulParams p;
  p.n = static_cast<u32>(bench::arg_u64(argc, argv, "n", 64));

  bench::print_header(
      "Ablation — read-only regions (L2-enabled input sharing)",
      "Lankes et al., PMAM'12, Section 6.4");

  std::printf("matmul %ux%u doubles, strong memory model\n\n", p.n, p.n);
  std::printf("%6s | %14s %10s %12s | %14s %10s %12s\n", "cores",
              "protected[ms]", "L2 hits", "transfers", "plain [ms]",
              "L2 hits", "transfers");
  bench::print_row_sep();
  for (const int cores : {1, 2, 4, 8}) {
    p.protect_inputs = true;
    const auto with = run_matmul(p, svm::Model::kStrong, cores);
    p.protect_inputs = false;
    const auto without = run_matmul(p, svm::Model::kStrong, cores);
    std::printf("%6d | %14.3f %10llu %12llu | %14.3f %10llu %12llu\n",
                cores, ps_to_ms(with.elapsed),
                static_cast<unsigned long long>(with.l2_hits),
                static_cast<unsigned long long>(with.ownership_acquires),
                ps_to_ms(without.elapsed),
                static_cast<unsigned long long>(without.l2_hits),
                static_cast<unsigned long long>(without.ownership_acquires));
  }
  bench::print_row_sep();
  std::printf(
      "expected shape: the protected runs use the L2 and avoid input\n"
      "ownership transfers; the unprotected strong-model runs thrash\n"
      "input pages between every pair of readers.\n");
  return 0;
}
