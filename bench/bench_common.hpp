// Shared console-table helpers for the paper-reproduction benchmark
// harnesses. Each bench binary regenerates one table or figure of the
// paper (see DESIGN.md section 5) and prints paper values next to the
// simulated measurements so EXPERIMENTS.md can be filled from the output.
//
// Alongside the human-readable table every bench can emit a
// machine-readable BENCH_<name>.json (via JsonReport) so the perf
// trajectory is diffable across commits.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "obs/bus.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "sccsim/config.hpp"
#include "sim/faults.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace msvm::bench {

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("=============================================================\n");
}

inline void print_row_sep() {
  std::printf("-------------------------------------------------------------\n");
}

/// Parses "--iters=N"-style overrides from argv.
inline u64 arg_u64(int argc, char** argv, const std::string& key,
                   u64 fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoull(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

inline bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// The workload-generator seed for this run ("--seed=N"). The default
/// matches the historical fixed seed the randomised workloads used, so a
/// run without the flag reproduces earlier outputs bit for bit. Every
/// bench records the value in its BENCH_*.json (JsonReport does it at
/// construction) so a stored result can always be re-derived.
inline u64 arg_seed(int argc, char** argv, u64 fallback = 42) {
  return arg_u64(argc, argv, "seed", fallback);
}

/// The per-run workload generator, threaded from --seed: deterministic
/// across platforms (xoshiro256**), reproducible from the JSON record.
inline sim::Rng seeded_rng(u64 seed) { return sim::Rng(seed); }

/// The core-count override for scale sweeps ("--cores=N"). Validated
/// against the supported range here so every bench rejects a bad count
/// with a clear message instead of tripping config validation later.
inline int arg_cores(int argc, char** argv, int fallback = 48) {
  const int cores = static_cast<int>(
      arg_u64(argc, argv, "cores", static_cast<u64>(fallback)));
  if (cores == fallback) return cores;  // sentinel fallbacks pass through
  if (cores < 1 || cores > 1024) {
    std::fprintf(stderr, "--cores=%d outside the supported [1, 1024]\n",
                 cores);
    std::exit(2);
  }
  return cores;
}

/// Parses "--key=string" overrides from argv.
inline std::string arg_str(int argc, char** argv, const std::string& key,
                           const std::string& fallback = "") {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

/// The chaos-layer fault plan for this run: "--faults=SPEC" wins, then
/// the MSVM_FAULTS environment variable, then no faults. Exits with a
/// usage message on a malformed spec rather than silently running clean.
inline sim::FaultPlan arg_faults(int argc, char** argv) {
  const std::string spec = arg_str(argc, argv, "faults");
  try {
    if (!spec.empty()) return sim::FaultPlan::parse(spec);
    return sim::FaultPlan::from_env();
  } catch (const sim::FaultSpecError& e) {
    std::fprintf(stderr, "bad fault spec: %s\n", e.what());
    std::exit(2);
  }
}

/// The uniform observability flag block every bench gains for free:
///
///   --trace=FILE     Chrome-trace/Perfetto JSON timeline of the run
///   --trace-mem      also record per-transaction memory events (firehose)
///   --metrics        fold run counters into the metrics registry; the
///                    registry is appended to BENCH_*.json and printable
///                    via the cluster report
///   --heatmap=FILE   per-page SVM heatmap JSON
///
/// Fills obs::runtime_config() (which every Chip constructor applies to
/// its bus) and registers atexit writers for the file outputs, so a
/// bench only needs one obs_setup() call — or the JsonReport(name, argc,
/// argv) constructor, which makes it. With none of the flags given this
/// is a no-op and the run is byte-identical to a build without it.
inline void obs_setup(int argc, char** argv) {
  // Construct the global sinks BEFORE registering any atexit writer:
  // exit handlers and static destructors share one LIFO stack, so a
  // sink first constructed later (by the first Chip) would be destroyed
  // before a writer registered here could read it.
  (void)obs::global_collector();
  (void)obs::global_heatmap();
  (void)obs::global_metrics();
  obs::RuntimeConfig& cfg = obs::runtime_config();
  const std::string trace_path = arg_str(argc, argv, "trace");
  if (!trace_path.empty()) {
    cfg.trace_path = trace_path;
    cfg.collect = true;
    cfg.categories |= obs::kCatTrace;
    if (arg_flag(argc, argv, "trace-mem")) cfg.categories |= obs::kCatMem;
    static bool trace_writer_registered = false;
    if (!trace_writer_registered) {
      trace_writer_registered = true;
      std::atexit([] {
        obs::write_chrome_trace(obs::global_collector(),
                                obs::runtime_config().trace_path.c_str());
      });
    }
  }
  const std::string heatmap_path = arg_str(argc, argv, "heatmap");
  if (!heatmap_path.empty()) {
    cfg.heatmap_path = heatmap_path;
    cfg.heatmap = true;
    static bool heatmap_writer_registered = false;
    if (!heatmap_writer_registered) {
      heatmap_writer_registered = true;
      std::atexit([] {
        obs::write_heatmap_json(obs::global_heatmap(),
                                obs::runtime_config().heatmap_path.c_str());
      });
    }
  }
  if (arg_flag(argc, argv, "metrics")) cfg.metrics = true;
}

/// Machine-readable companion to the console tables: collects config
/// key/values and named sample series, then writes BENCH_<name>.json
/// into the working directory with count/median/p95 per series. The
/// samples are whatever unit the bench measures (ms, round-trips, ...);
/// the unit is part of the series name (e.g. "strong_ms").
class JsonReport {
 public:
  /// Every report carries the run's workload seed (see arg_seed) so any
  /// stored BENCH_*.json names the exact inputs that produced it.
  explicit JsonReport(std::string name, u64 seed = 42)
      : name_(std::move(name)) {
    config("seed", seed);
  }

  /// Preferred form: records the --seed, wires up the uniform
  /// observability flag block (--trace/--metrics/--heatmap), and stamps
  /// the default 48-core SCC topology into the header — every
  /// fixed-topology bench runs that die. Sweeping benches (scaling) use
  /// the seed constructor and record their own topology block.
  JsonReport(std::string name, int argc, char** argv)
      : JsonReport(std::move(name), arg_seed(argc, argv)) {
    obs_setup(argc, argv);
    topology(scc::TopologySpec{}, 48);
  }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { write(); }

  void config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, "\"" + value + "\"");
  }
  void config(const std::string& key, u64 value) {
    config_.emplace_back(key, std::to_string(value));
  }
  void config(const std::string& key, double value) {
    config_.emplace_back(key, fmt_double(value));
  }

  /// Records the chip geometry (mesh columns/rows, cores per tile, chip
  /// count, core count) so every stored BENCH_*.json names the die(s) it
  /// ran on and baselines are self-describing.
  void topology(const scc::TopologySpec& spec, int cores) {
    const scc::Topology topo(spec);
    config("cores", static_cast<u64>(cores));
    config("mesh_cols", static_cast<u64>(topo.cols()));
    config("mesh_rows", static_cast<u64>(topo.rows()));
    config("cores_per_tile", static_cast<u64>(topo.cores_per_tile()));
    config("chips", static_cast<u64>(topo.num_chips()));
  }

  void sample(const std::string& series, double value) {
    series_[series].push_back(value);
  }

  /// Writes BENCH_<name>.json; idempotent (the destructor calls it too,
  /// so a bench may flush early and keep sampling — last write wins).
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;  // CWD not writable: drop the companion
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"config\": {",
                 name_.c_str());
    for (std::size_t i = 0; i < config_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %s", i ? "," : "",
                   config_[i].first.c_str(), config_[i].second.c_str());
    }
    std::fprintf(f, "%s},\n  \"series\": {", config_.empty() ? "" : "\n  ");
    bool first_series = true;
    for (const auto& [series, raw] : series_) {
      std::vector<double> v = raw;
      std::sort(v.begin(), v.end());
      std::fprintf(f, "%s\n    \"%s\": {\"count\": %zu, \"median\": %s, "
                      "\"p95\": %s}",
                   first_series ? "" : ",", series.c_str(), v.size(),
                   fmt_double(percentile(v, 0.50)).c_str(),
                   fmt_double(percentile(v, 0.95)).c_str());
      first_series = false;
    }
    std::fprintf(f, "%s}", series_.empty() ? "" : "\n  ");
    // Only under --metrics (and only when something was folded): without
    // the flag the emitted bytes are identical to the historical format.
    if (obs::runtime_config().metrics && !obs::global_metrics().empty()) {
      std::fprintf(f, ",\n  \"metrics\": %s",
                   obs::global_metrics().to_json("    ").c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
  }

 private:
  static std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  /// Nearest-rank percentile of an already-sorted sample vector.
  static double percentile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::map<std::string, std::vector<double>> series_;
};

}  // namespace msvm::bench
