// Shared console-table helpers for the paper-reproduction benchmark
// harnesses. Each bench binary regenerates one table or figure of the
// paper (see DESIGN.md section 5) and prints paper values next to the
// simulated measurements so EXPERIMENTS.md can be filled from the output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace msvm::bench {

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("=============================================================\n");
}

inline void print_row_sep() {
  std::printf("-------------------------------------------------------------\n");
}

/// Parses "--iters=N"-style overrides from argv.
inline u64 arg_u64(int argc, char** argv, const std::string& key,
                   u64 fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoull(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

inline bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace msvm::bench
