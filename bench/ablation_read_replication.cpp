// Ablation — read-replication directory (an extension beyond the paper):
// under the single-owner Strong model, read-mostly pages ping-pong
// ownership through serial mailbox round-trips even when nobody writes.
// With SvmConfig::read_replication the directory installs read-only
// replicas after one grant, so the blocking fault-path round-trips
// collapse on read-shared workloads:
//   - matmul without protect_readonly (operand tiles are read by every
//     core, written by none after init),
//   - the lock-striped histogram merge (strong model),
//   - the Laplace boundary rows (read by one neighbour per iteration).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "workloads/histogram.hpp"
#include "workloads/laplace.hpp"
#include "workloads/matmul.hpp"

using namespace msvm;

namespace {

struct Row {
  TimePs elapsed = 0;
  u64 roundtrips = 0;
  u64 invalidations = 0;
};

void print_row(const char* label, int cores, const Row& single,
               const Row& repl, bench::JsonReport& json,
               const char* series) {
  const double ratio =
      repl.roundtrips
          ? static_cast<double>(single.roundtrips) /
                static_cast<double>(repl.roundtrips)
          : (single.roundtrips ? 99.9 : 1.0);
  std::printf("%-18s %5d | %10.3f %9llu | %10.3f %9llu %7llu | %6.1fx\n",
              label, cores, ps_to_ms(single.elapsed),
              static_cast<unsigned long long>(single.roundtrips),
              ps_to_ms(repl.elapsed),
              static_cast<unsigned long long>(repl.roundtrips),
              static_cast<unsigned long long>(repl.invalidations), ratio);
  char key[96];
  std::snprintf(key, sizeof(key), "%s_single_rtt", series);
  json.sample(key, static_cast<double>(single.roundtrips));
  std::snprintf(key, sizeof(key), "%s_repl_rtt", series);
  json.sample(key, static_cast<double>(repl.roundtrips));
  std::snprintf(key, sizeof(key), "%s_single_ms", series);
  json.sample(key, ps_to_ms(single.elapsed));
  std::snprintf(key, sizeof(key), "%s_repl_ms", series);
  json.sample(key, ps_to_ms(repl.elapsed));
}

}  // namespace

int main(int argc, char** argv) {
  const u32 n = static_cast<u32>(bench::arg_u64(argc, argv, "n", 48));
  const u32 iters =
      static_cast<u32>(bench::arg_u64(argc, argv, "iters", 6));
  const u64 seed = bench::arg_seed(argc, argv);

  bench::print_header(
      "Ablation — read replication (sharer directory vs. single owner)",
      "extension beyond Lankes et al.; cf. Section 6.1 ownership "
      "transfers");

  bench::JsonReport json("ablation_read_replication", argc, argv);
  json.config("matmul_n", static_cast<u64>(n));
  json.config("laplace_iters", static_cast<u64>(iters));

  std::printf("strong memory model; rtt = blocking fault-path mailbox "
              "round-trips\n\n");
  std::printf("%-18s %5s | %10s %9s | %10s %9s %7s | %7s\n", "workload",
              "cores", "1-own [ms]", "rtt", "repl [ms]", "rtt", "inval",
              "rtt win");
  bench::print_row_sep();

  for (const int cores : {2, 4, 8}) {
    workloads::MatmulParams mp;
    mp.n = n;
    mp.protect_inputs = false;  // replication replaces the manual protect
    mp.read_replication = false;
    const auto m_single = run_matmul(mp, svm::Model::kStrong, cores);
    mp.read_replication = true;
    const auto m_repl = run_matmul(mp, svm::Model::kStrong, cores);
    print_row("matmul_readonly", cores,
              {m_single.elapsed, m_single.mail_roundtrips,
               m_single.invalidations},
              {m_repl.elapsed, m_repl.mail_roundtrips,
               m_repl.invalidations},
              json, "matmul");
  }
  bench::print_row_sep();

  for (const int cores : {2, 4, 8}) {
    workloads::HistogramParams hp;
    hp.seed = seed;
    hp.read_replication = false;
    const auto h_single = run_histogram(hp, svm::Model::kStrong, cores);
    hp.read_replication = true;
    const auto h_repl = run_histogram(hp, svm::Model::kStrong, cores);
    print_row("histogram", cores,
              {h_single.elapsed, h_single.mail_roundtrips,
               h_single.invalidations},
              {h_repl.elapsed, h_repl.mail_roundtrips,
               h_repl.invalidations},
              json, "histogram");
  }
  bench::print_row_sep();

  for (const int cores : {2, 4, 8}) {
    workloads::LaplaceParams lp;
    lp.ny = 256;  // keep the ablation quick; sharing is per boundary row
    lp.iterations = iters;
    lp.read_replication = false;
    const auto l_single = run_laplace_svm(lp, svm::Model::kStrong, cores);
    lp.read_replication = true;
    const auto l_repl = run_laplace_svm(lp, svm::Model::kStrong, cores);
    print_row("laplace", cores,
              {l_single.elapsed, l_single.mail_roundtrips,
               l_single.invalidations},
              {l_repl.elapsed, l_repl.mail_roundtrips,
               l_repl.invalidations},
              json, "laplace");
  }
  bench::print_row_sep();
  std::printf(
      "expected shape: matmul_readonly round-trips collapse (>= 2x fewer)\n"
      "under replication — operands are read-shared, so grants replace\n"
      "ownership ping-pong; histogram/laplace improve less because their\n"
      "sharing is write-heavy (every replica costs an invalidation).\n");
  return 0;
}
