// Degraded-mode throughput: how much useful work the surviving cores
// still complete as 0..3 cores fail-stop mid-run. Each row runs the
// slot-mosaic kill workload under the heartbeat-lease recovery envelope
// and reports verified slots per virtual millisecond — the graceful-
// degradation curve of the recovery design (a dead core should cost its
// own share of the work plus a bounded recovery stall, not wedge or
// poison the rest of the chip).
//
//   ./degraded_throughput --cores=48 --pages=16 --seed=42
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"
#include "sim/faults.hpp"
#include "workloads/kill_mosaic.hpp"

int main(int argc, char** argv) {
  using namespace msvm;
  const u64 seed = bench::arg_seed(argc, argv);
  const int cores =
      static_cast<int>(bench::arg_u64(argc, argv, "cores", 48));
  const u32 pages =
      static_cast<u32>(bench::arg_u64(argc, argv, "pages", 16));

  bench::print_header(
      "degraded-mode throughput under fail-stop core deaths",
      "verified slots per virtual ms as 0..3 cores die mid-run");

  bench::JsonReport json("degraded_throughput", argc, argv);
  json.config("cores", static_cast<u64>(cores));
  json.config("pages", static_cast<u64>(pages));

  struct ModelRow {
    svm::Model model;
    bool read_replication;
    const char* name;
  };
  static constexpr ModelRow kModels[] = {
      {svm::Model::kStrong, false, "strong"},
      {svm::Model::kStrong, true, "strong+rr"},
      {svm::Model::kLazyRelease, false, "lrc"},
  };

  std::printf("%-10s %-6s %-10s %-9s %-9s %-11s %s\n", "model", "kills",
              "outcome", "verified", "lost", "makespan", "slots/ms");
  bench::print_row_sep();

  bool ok = true;
  for (const ModelRow& m : kModels) {
    for (int kills = 0; kills <= 3; ++kills) {
      workloads::KillMosaicParams p;
      p.pages = pages;
      p.seed = seed;
      p.read_replication = m.read_replication;
      // Deterministic staggered deaths spread across the run so each row
      // is a reproducible point on the degradation curve.
      for (int k = 0; k < kills; ++k) {
        sim::KillSpec spec;
        spec.core = 5 + k * 11;
        spec.at_ps = (1 + k) * kPsPerMs;
        p.faults.kills.push_back(spec);
      }
      p.faults.watchdog_ps = 500 * kPsPerMs;
      p.faults.sweep_period = 2;
      p.faults.degrade_after = 6;
      p.faults.retry_ps = 2 * kPsPerMs;
      p.faults.lease_ps = 500 * kPsPerUs;

      const char* outcome = "correct";
      workloads::KillMosaicResult r;
      try {
        r = workloads::run_kill_mosaic(p, m.model, cores);
        if (r.slot_mismatches > 0) {
          outcome = "WRONG";
          ok = false;
        } else if (r.ranks_lost > 0) {
          outcome = "data-loss";
        }
      } catch (const sim::HangError&) {
        outcome = "clean-hang";
      }

      const double ms =
          static_cast<double>(r.makespan) / static_cast<double>(kPsPerMs);
      const double slots =
          static_cast<double>(r.ranks_verified) * static_cast<double>(pages);
      const double per_ms = ms > 0 ? slots / ms : 0.0;
      std::printf("%-10s %-6d %-10s %-9d %-9d %8.3fms %10.1f\n", m.name,
                  kills, outcome, r.ranks_verified, r.ranks_lost, ms,
                  per_ms);
      const std::string tag =
          std::string(m.name) + "_kills" + std::to_string(kills);
      json.sample(tag + "_slots_per_ms", per_ms);
      json.sample(tag + "_verified", static_cast<double>(r.ranks_verified));
    }
  }

  if (!ok) {
    std::fprintf(stderr,
                 "degraded_throughput FAILED: wrong data on a survivor\n");
    return 1;
  }
  return 0;
}
