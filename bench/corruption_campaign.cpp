// Corruption campaign: the end-to-end data-integrity gate. Seeded
// slot-mosaic runs across {strong, strong+rr, lrc} x {48x1, 96x4
// cores/lanes} under a matrix of bit-flip plans (MPB mail lines, DRAM
// page frames at ownership handoffs, SVM metadata words) and assert the
// detect-or-die contract:
//
//   * zero silent wrong — no survivor ever reads a flipped value as
//     data (slot mismatches fail the campaign outright);
//   * zero hangs — corruption is a data fault, not a liveness fault:
//     dropped mails retransmit, poisoned pages throw typed errors;
//   * every flip accounted for — the injection ledger reconciles
//     against the detection counters:
//       mail_flips == mail_corrupt_drops                      (exact)
//       seal_repairs+seal_refetches+pages_poisoned <= page_flips
//       meta_corrections <= meta_flips
//     (page/meta flips are inequalities: a flipped frame nobody touches
//     again, or a flipped word never reloaded, stays latent — but can
//     never be *read* without detection);
//   * auditor clean — the ShadowDirectory replays the run and asserts
//     poison finality on top of the usual coherence invariants.
//
//   ./corruption_campaign --plans=126 --seed=42
//   ./corruption_campaign --faults='flippage=0.5,retry=2ms,watchdog=500ms'
#include <cstdio>
#include <iterator>
#include <string>

#include "bench/bench_common.hpp"
#include "sim/faults.hpp"
#include "workloads/kill_mosaic.hpp"

namespace {

using namespace msvm;

enum class Outcome { kCorrect, kTypedLoss, kCleanHang, kWrong };

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCorrect: return "correct";
    case Outcome::kTypedLoss: return "typed-loss";
    case Outcome::kCleanHang: return "clean-hang";
    case Outcome::kWrong: return "WRONG";
  }
  return "?";
}

struct Combo {
  int cores;
  int lanes;
  svm::Model model;
  bool read_replication;
  const char* name;
};

/// {strong, strong+rr, lrc} x {48x1, 96x4}; 96 cores runs the sharded
/// multi-lane scheduler, so flip handling is exercised under lane
/// parallelism too.
constexpr Combo kCombos[] = {
    {48, 1, svm::Model::kStrong, false, "strong"},
    {48, 1, svm::Model::kStrong, true, "strong+rr"},
    {48, 1, svm::Model::kLazyRelease, false, "lrc"},
    {96, 4, svm::Model::kStrong, false, "strong"},
    {96, 4, svm::Model::kStrong, true, "strong+rr"},
    {96, 4, svm::Model::kLazyRelease, false, "lrc"},
};

/// One corruption plan: each flip clause drawn from {off, rare, common,
/// heavy}, redrawn until at least one is armed. Page-flip rates run much
/// hotter than the others: they are drawn once per ownership handoff,
/// not once per mail or metadata store. Every third plan also arms the
/// background scrubber. The recovery envelope keeps corruption a data
/// fault, never a liveness fault: CRC-dropped mails retransmit quickly,
/// and an armed watchdog types any hang that slips through.
sim::FaultPlan corruption_plan(sim::Rng& rng, u64 plan_seed, u64 index) {
  static constexpr double kMailRates[] = {0.0, 0.005, 0.02, 0.05};
  static constexpr double kPageRates[] = {0.0, 0.05, 0.2, 0.5};
  static constexpr double kMetaRates[] = {0.0, 0.01, 0.05, 0.1};
  sim::FaultPlan plan;
  plan.seed = plan_seed;
  do {
    plan.flipmail = kMailRates[rng.next_below(4)];
    plan.flippage = kPageRates[rng.next_below(4)];
    plan.flipmeta = kMetaRates[rng.next_below(4)];
  } while (plan.flipmail == 0 && plan.flippage == 0 && plan.flipmeta == 0);
  if (index % 3 == 2) plan.scrub_ps = 200 * kPsPerUs;
  plan.watchdog_ps = 500 * kPsPerMs;
  plan.sweep_period = 2;
  plan.degrade_after = 6;
  plan.retry_ps = 2 * kPsPerMs;
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const u64 seed = bench::arg_seed(argc, argv);
  const u64 num_plans = bench::arg_u64(argc, argv, "plans", 126);
  const std::string fixed_spec = bench::arg_str(argc, argv, "faults");
  const bool noaudit = bench::arg_flag(argc, argv, "noaudit");

  bench::print_header(
      "corruption campaign: bit flips in mail, frames and metadata",
      "contract: detect-or-die — flips repaired, dropped or typed, "
      "never read");

  bench::JsonReport json("corruption", argc, argv);
  json.config("plans", num_plans);
  if (!fixed_spec.empty()) json.config("faults", fixed_spec);

  sim::Rng rng = bench::seeded_rng(seed);
  u64 correct = 0;
  u64 typed_loss = 0;
  u64 clean_hangs = 0;
  u64 wrong = 0;
  u64 audit_violations = 0;
  u64 ledger_violations = 0;
  // Campaign-wide injection/detection ledger.
  u64 mail_flips = 0;
  u64 mail_drops = 0;
  u64 page_flips = 0;
  u64 repairs = 0;
  u64 refetches = 0;
  u64 poisoned = 0;
  u64 meta_flips = 0;
  u64 meta_corrections = 0;
  u64 verified_ranks = 0;

  for (u64 i = 0; i < num_plans; ++i) {
    const Combo& combo = kCombos[i % std::size(kCombos)];
    workloads::KillMosaicParams p;
    p.pages = 16;
    p.seed = seed * 1000 + i;
    p.sched_lanes = combo.lanes;
    p.read_replication = combo.read_replication;
    p.use_ipi = (i % 2) == 0;
    p.audit = !noaudit;
    p.faults = fixed_spec.empty()
                   ? corruption_plan(rng, p.seed, i)
                   : bench::arg_faults(argc, argv);
    const std::string spec = p.faults.to_spec();

    std::printf("run %3llu/%llu: %3d cores x%d %-9s %s\n",
                static_cast<unsigned long long>(i + 1),
                static_cast<unsigned long long>(num_plans), combo.cores,
                p.sched_lanes, combo.name, spec.c_str());

    Outcome o = Outcome::kCorrect;
    workloads::KillMosaicResult r;
    try {
      r = workloads::run_kill_mosaic(p, combo.model, combo.cores);
      if (r.slot_mismatches > 0) {
        std::fprintf(stderr, "  SILENT WRONG: %llu slot mismatch(es)\n",
                     static_cast<unsigned long long>(r.slot_mismatches));
        o = Outcome::kWrong;
      } else if (r.ranks_lost > 0) {
        o = Outcome::kTypedLoss;
      }
      if (p.audit && r.audit_violations > 0) {
        std::fprintf(stderr, "  AUDIT: %s", r.audit_report.c_str());
        audit_violations += r.audit_violations;
        o = Outcome::kWrong;
      }
      // Ledger reconciliation: no injected flip may vanish unaccounted.
      const u64 page_accounted =
          r.seal_repairs + r.seal_refetches + r.pages_poisoned;
      const bool ledger_ok = r.mail_flips == r.mail_corrupt_drops &&
                             page_accounted <= r.page_flips &&
                             r.meta_corrections <= r.meta_flips;
      if (!ledger_ok) {
        std::fprintf(
            stderr,
            "  LEDGER: mail %llu/%llu drops, page %llu flips / %llu "
            "accounted, meta %llu flips / %llu corrections\n",
            static_cast<unsigned long long>(r.mail_flips),
            static_cast<unsigned long long>(r.mail_corrupt_drops),
            static_cast<unsigned long long>(r.page_flips),
            static_cast<unsigned long long>(page_accounted),
            static_cast<unsigned long long>(r.meta_flips),
            static_cast<unsigned long long>(r.meta_corrections));
        ++ledger_violations;
        o = Outcome::kWrong;
      }
      mail_flips += r.mail_flips;
      mail_drops += r.mail_corrupt_drops;
      page_flips += r.page_flips;
      repairs += r.seal_repairs;
      refetches += r.seal_refetches;
      poisoned += r.pages_poisoned;
      meta_flips += r.meta_flips;
      meta_corrections += r.meta_corrections;
      verified_ranks += static_cast<u64>(r.ranks_verified);
    } catch (const sim::HangError& e) {
      // Corruption must never wedge the system: even a *clean* hang
      // fails this campaign (unlike the kill campaign, where a death at
      // the wrong instant can legitimately strand a waiter).
      std::fprintf(stderr, "  HANG: %s\n%s", e.what(),
                   e.report().c_str());
      o = Outcome::kCleanHang;
    }

    std::printf(
        "  -> %-10s verified=%d lost=%d(corrupt=%d) "
        "flips[mail=%llu page=%llu meta=%llu] "
        "drops=%llu sealed=%llu repaired=%llu refetched=%llu "
        "poisoned=%llu ecc=%llu%s\n",
        outcome_name(o), r.ranks_verified, r.ranks_lost, r.ranks_corrupt,
        static_cast<unsigned long long>(r.mail_flips),
        static_cast<unsigned long long>(r.page_flips),
        static_cast<unsigned long long>(r.meta_flips),
        static_cast<unsigned long long>(r.mail_corrupt_drops),
        static_cast<unsigned long long>(r.pages_sealed),
        static_cast<unsigned long long>(r.seal_repairs),
        static_cast<unsigned long long>(r.seal_refetches),
        static_cast<unsigned long long>(r.pages_poisoned),
        static_cast<unsigned long long>(r.meta_corrections),
        p.audit ? (r.audit_violations == 0 ? " audit=clean"
                                           : " audit=VIOLATED")
                : "");
    switch (o) {
      case Outcome::kCorrect: ++correct; break;
      case Outcome::kTypedLoss: ++typed_loss; break;
      case Outcome::kCleanHang: ++clean_hangs; break;
      case Outcome::kWrong: ++wrong; break;
    }
  }

  const u64 total = correct + typed_loss + clean_hangs + wrong;
  bench::print_row_sep();
  std::printf(
      "corruption campaign: %llu run(s): %llu correct, %llu typed loss, "
      "%llu hang(s), %llu WRONG; ledger: %llu mail flips (%llu dropped), "
      "%llu page flips (%llu repaired, %llu refetched, %llu poisoned), "
      "%llu meta flips (%llu corrected)\n",
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(correct),
      static_cast<unsigned long long>(typed_loss),
      static_cast<unsigned long long>(clean_hangs),
      static_cast<unsigned long long>(wrong),
      static_cast<unsigned long long>(mail_flips),
      static_cast<unsigned long long>(mail_drops),
      static_cast<unsigned long long>(page_flips),
      static_cast<unsigned long long>(repairs),
      static_cast<unsigned long long>(refetches),
      static_cast<unsigned long long>(poisoned),
      static_cast<unsigned long long>(meta_flips),
      static_cast<unsigned long long>(meta_corrections));
  json.sample("correct", static_cast<double>(correct));
  json.sample("typed_loss", static_cast<double>(typed_loss));
  json.sample("hangs", static_cast<double>(clean_hangs));
  json.sample("wrong", static_cast<double>(wrong));
  json.sample("verified_ranks", static_cast<double>(verified_ranks));
  json.sample("mail_flips", static_cast<double>(mail_flips));
  json.sample("mail_drops", static_cast<double>(mail_drops));
  json.sample("page_flips", static_cast<double>(page_flips));
  json.sample("page_repairs", static_cast<double>(repairs));
  json.sample("page_refetches", static_cast<double>(refetches));
  json.sample("pages_poisoned", static_cast<double>(poisoned));
  json.sample("meta_flips", static_cast<double>(meta_flips));
  json.sample("meta_corrections", static_cast<double>(meta_corrections));
  if (!noaudit) {
    json.sample("audit_violations", static_cast<double>(audit_violations));
  }
  json.sample("ledger_violations", static_cast<double>(ledger_violations));

  if (wrong != 0 || clean_hangs != 0) {
    std::fprintf(stderr,
                 "corruption campaign FAILED: %llu wrong, %llu hang(s)\n",
                 static_cast<unsigned long long>(wrong),
                 static_cast<unsigned long long>(clean_hangs));
    return 1;
  }
  std::printf("corruption campaign passed: every flip was dropped, "
              "repaired, corrected or typed — none was read%s\n",
              noaudit ? "" : " (auditor clean)");
  return 0;
}
