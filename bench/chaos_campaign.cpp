// Chaos campaign: run the three shared-memory workloads (Laplace,
// matmul, histogram) under a matrix of seeded fault-injection plans and
// assert the system's robustness contract — every run either completes
// with bit-correct data or fails *cleanly* with a typed HangError
// carrying a structured hang report. A silent hang, a bare deadlock
// abort, or silently corrupted results all fail the campaign.
//
// Each plan draws its injection probabilities from a small set (so the
// matrix covers single-fault and compound-fault runs) and fixes the
// recovery envelope: an armed watchdog, an IPI-mode poll sweep (the only
// recovery for a dropped wake-up IPI — the receiver halts and would
// never re-check its slots otherwise), degradation to poll mode after
// repeated loss, and a short retransmission timeout so slot-stuck
// requests retry within the campaign's small workloads.
//
//   ./chaos_campaign --plans=20 --seed=42 --cores=4
//   ./chaos_campaign --faults='ipi_drop=0.2,watchdog=500ms,sweep=2'
//
// With --faults the given plan replaces the random matrix (one plan,
// still run across all workloads and both delivery modes).
#include <cmath>
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"
#include "sim/faults.hpp"
#include "workloads/histogram.hpp"
#include "workloads/laplace.hpp"
#include "workloads/matmul.hpp"

namespace {

using namespace msvm;

enum class Outcome { kCorrect, kCleanHang, kWrong };

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCorrect: return "correct";
    case Outcome::kCleanHang: return "clean-hang";
    case Outcome::kWrong: return "WRONG";
  }
  return "?";
}

bool close_enough(double got, double want) {
  const double scale = std::max(1.0, std::fabs(want));
  return std::fabs(got - want) <= 1e-9 * scale;
}

/// One random plan: injection knobs from {off, rare, common, heavy},
/// recovery envelope fixed (watchdog + sweep + degrade + fast retry).
sim::FaultPlan random_plan(sim::Rng& rng, u64 plan_seed) {
  static constexpr double kProbs[] = {0.0, 0.02, 0.1, 0.3};
  auto draw = [&rng] { return kProbs[rng.next_below(4)]; };
  sim::FaultPlan plan;
  plan.seed = plan_seed;
  plan.ipi_drop = draw();
  plan.ipi_delay = draw();
  plan.mail_delay = draw();
  plan.mail_dup = draw();
  plan.stall = draw();
  plan.spurious = draw();
  plan.watchdog_ps = 500 * kPsPerMs;
  plan.sweep_period = 2;
  plan.degrade_after = 6;
  plan.retry_ps = 2 * kPsPerMs;
  return plan;
}

bool g_print_reports = false;

Outcome guard(const char* what, const std::string& spec,
              Outcome (*body)(const sim::FaultPlan&, bool, int),
              const sim::FaultPlan& plan, bool use_ipi, int cores) {
  try {
    return body(plan, use_ipi, cores);
  } catch (const sim::HangError& e) {
    // The robustness contract: a hang must surface as a typed error
    // with a non-empty structured report, never a silent wedge.
    if (e.report().empty()) {
      std::fprintf(stderr, "%s [%s]: HangError with empty report\n", what,
                   spec.c_str());
      return Outcome::kWrong;
    }
    if (g_print_reports) {
      std::printf("  --- %s [%s]: %s ---\n%s", what, spec.c_str(),
                  e.what(), e.report().c_str());
    }
    return Outcome::kCleanHang;
  }
}

Outcome laplace_once(const sim::FaultPlan& plan, bool use_ipi, int cores) {
  workloads::LaplaceParams p;
  p.ny = 32;
  p.nx = 64;
  p.iterations = 3;
  p.faults = plan;
  const double want = workloads::laplace_reference_checksum(p);
  const workloads::LaplaceResult r =
      workloads::run_laplace_svm(p, svm::Model::kStrong, cores, use_ipi);
  return close_enough(r.checksum, want) ? Outcome::kCorrect
                                        : Outcome::kWrong;
}

Outcome matmul_once(const sim::FaultPlan& plan, bool use_ipi, int cores) {
  workloads::MatmulParams p;
  p.n = 20;
  p.use_ipi = use_ipi;
  p.faults = plan;
  const double want = workloads::matmul_reference_checksum(p);
  const workloads::MatmulResult r =
      workloads::run_matmul(p, svm::Model::kStrong, cores);
  return close_enough(r.checksum, want) ? Outcome::kCorrect
                                        : Outcome::kWrong;
}

Outcome histogram_once(const sim::FaultPlan& plan, bool use_ipi,
                       int cores) {
  workloads::HistogramParams p;
  p.bins = 64;
  p.samples_per_core = 512;
  p.use_ipi = use_ipi;
  p.faults = plan;
  const std::vector<u64> want = workloads::histogram_reference(p, cores);
  const workloads::HistogramResult r =
      workloads::run_histogram(p, svm::Model::kLazyRelease, cores);
  return r.bins == want ? Outcome::kCorrect : Outcome::kWrong;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msvm;
  const u64 seed = bench::arg_seed(argc, argv);
  const u64 num_plans = bench::arg_u64(argc, argv, "plans", 20);
  const int cores =
      static_cast<int>(bench::arg_u64(argc, argv, "cores", 4));
  const std::string fixed_spec = bench::arg_str(argc, argv, "faults");
  g_print_reports = bench::arg_flag(argc, argv, "report");

  bench::print_header(
      "chaos campaign: workloads under deterministic fault injection",
      "robustness contract: correct data or a typed, reported failure");

  bench::JsonReport json("chaos_campaign", argc, argv);
  json.config("plans", num_plans);
  json.config("cores", static_cast<u64>(cores));
  if (!fixed_spec.empty()) json.config("faults", fixed_spec);

  struct Case {
    const char* name;
    Outcome (*body)(const sim::FaultPlan&, bool, int);
  };
  static constexpr Case kCases[] = {
      {"laplace", laplace_once},
      {"matmul", matmul_once},
      {"histogram", histogram_once},
  };

  sim::Rng rng = bench::seeded_rng(seed);
  u64 correct = 0;
  u64 clean_hangs = 0;
  u64 wrong = 0;

  for (u64 i = 0; i < num_plans; ++i) {
    sim::FaultPlan plan;
    if (!fixed_spec.empty()) {
      plan = bench::arg_faults(argc, argv);
    } else {
      plan = random_plan(rng, seed * 1000 + i);
    }
    const std::string spec = plan.to_spec();
    std::printf("plan %2llu/%llu: %s\n",
                static_cast<unsigned long long>(i + 1),
                static_cast<unsigned long long>(num_plans),
                spec.empty() ? "(no faults)" : spec.c_str());
    for (const Case& c : kCases) {
      for (const bool use_ipi : {true, false}) {
        const Outcome o = guard(c.name, spec, c.body, plan, use_ipi, cores);
        std::printf("  %-9s %-4s -> %s\n", c.name,
                    use_ipi ? "ipi" : "poll", outcome_name(o));
        switch (o) {
          case Outcome::kCorrect: ++correct; break;
          case Outcome::kCleanHang: ++clean_hangs; break;
          case Outcome::kWrong: ++wrong; break;
        }
      }
    }
  }

  const u64 total = correct + clean_hangs + wrong;
  bench::print_row_sep();
  std::printf("campaign: %llu run(s): %llu correct, %llu clean hang(s), "
              "%llu WRONG\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(correct),
              static_cast<unsigned long long>(clean_hangs),
              static_cast<unsigned long long>(wrong));
  json.sample("correct", static_cast<double>(correct));
  json.sample("clean_hangs", static_cast<double>(clean_hangs));
  json.sample("wrong", static_cast<double>(wrong));
  if (wrong != 0) {
    std::fprintf(stderr,
                 "chaos campaign FAILED: %llu run(s) broke the "
                 "correct-or-fail-cleanly contract\n",
                 static_cast<unsigned long long>(wrong));
    return 1;
  }
  std::printf("chaos campaign passed: every run completed correctly or "
              "failed cleanly\n");
  return 0;
}
