// Chaos campaign: run the three shared-memory workloads (Laplace,
// matmul, histogram) under a matrix of seeded fault-injection plans and
// assert the system's robustness contract — every run either completes
// with bit-correct data or fails *cleanly* with a typed HangError
// carrying a structured hang report. A silent hang, a bare deadlock
// abort, or silently corrupted results all fail the campaign.
//
// Each plan draws its injection probabilities from a small set (so the
// matrix covers single-fault and compound-fault runs) and fixes the
// recovery envelope: an armed watchdog, an IPI-mode poll sweep (the only
// recovery for a dropped wake-up IPI — the receiver halts and would
// never re-check its slots otherwise), degradation to poll mode after
// repeated loss, and a short retransmission timeout so slot-stuck
// requests retry within the campaign's small workloads.
//
//   ./chaos_campaign --plans=20 --seed=42 --cores=4
//   ./chaos_campaign --faults='ipi_drop=0.2,watchdog=500ms,sweep=2'
//
// With --faults the given plan replaces the random matrix (one plan,
// still run across all workloads and both delivery modes).
//
// Kill mode (`--kill`) runs the fail-stop campaign instead: seeded
// slot-mosaic runs cycling {48, 96, 256} cores (multi-lane scheduling
// at and above 96) x {strong, strong+rr, lrc}, each killing 1..3
// random cores at random virtual times under the heartbeat-lease
// recovery envelope. Every run must end as correct-surviving-cores, a
// typed data loss, or a clean HangError — never wrong data, never a
// crash. `--audit` attaches the ShadowDirectory coherence auditor and
// fails the campaign on any invariant violation.
//
//   ./chaos_campaign --kill --plans=126 --audit
//   ./chaos_campaign --kill --plans=9 --cores=96 --lanes=4
#include <cmath>
#include <cstdio>
#include <iterator>
#include <string>

#include "bench/bench_common.hpp"
#include "sim/faults.hpp"
#include "workloads/histogram.hpp"
#include "workloads/kill_mosaic.hpp"
#include "workloads/laplace.hpp"
#include "workloads/matmul.hpp"

namespace {

using namespace msvm;

enum class Outcome { kCorrect, kCleanHang, kDataLoss, kWrong };

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCorrect: return "correct";
    case Outcome::kCleanHang: return "clean-hang";
    case Outcome::kDataLoss: return "data-loss";
    case Outcome::kWrong: return "WRONG";
  }
  return "?";
}

bool close_enough(double got, double want) {
  const double scale = std::max(1.0, std::fabs(want));
  return std::fabs(got - want) <= 1e-9 * scale;
}

/// One random plan: injection knobs from {off, rare, common, heavy},
/// recovery envelope fixed (watchdog + sweep + degrade + fast retry).
sim::FaultPlan random_plan(sim::Rng& rng, u64 plan_seed) {
  static constexpr double kProbs[] = {0.0, 0.02, 0.1, 0.3};
  auto draw = [&rng] { return kProbs[rng.next_below(4)]; };
  sim::FaultPlan plan;
  plan.seed = plan_seed;
  plan.ipi_drop = draw();
  plan.ipi_delay = draw();
  plan.mail_delay = draw();
  plan.mail_dup = draw();
  plan.stall = draw();
  plan.spurious = draw();
  plan.watchdog_ps = 500 * kPsPerMs;
  plan.sweep_period = 2;
  plan.degrade_after = 6;
  plan.retry_ps = 2 * kPsPerMs;
  return plan;
}

bool g_print_reports = false;

Outcome guard(const char* what, const std::string& spec,
              Outcome (*body)(const sim::FaultPlan&, bool, int),
              const sim::FaultPlan& plan, bool use_ipi, int cores) {
  try {
    return body(plan, use_ipi, cores);
  } catch (const sim::HangError& e) {
    // The robustness contract: a hang must surface as a typed error
    // with a non-empty structured report, never a silent wedge.
    if (e.report().empty()) {
      std::fprintf(stderr, "%s [%s]: HangError with empty report\n", what,
                   spec.c_str());
      return Outcome::kWrong;
    }
    if (g_print_reports) {
      std::printf("  --- %s [%s]: %s ---\n%s", what, spec.c_str(),
                  e.what(), e.report().c_str());
    }
    return Outcome::kCleanHang;
  }
}

Outcome laplace_once(const sim::FaultPlan& plan, bool use_ipi, int cores) {
  workloads::LaplaceParams p;
  p.ny = 32;
  p.nx = 64;
  p.iterations = 3;
  p.faults = plan;
  const double want = workloads::laplace_reference_checksum(p);
  const workloads::LaplaceResult r =
      workloads::run_laplace_svm(p, svm::Model::kStrong, cores, use_ipi);
  return close_enough(r.checksum, want) ? Outcome::kCorrect
                                        : Outcome::kWrong;
}

Outcome matmul_once(const sim::FaultPlan& plan, bool use_ipi, int cores) {
  workloads::MatmulParams p;
  p.n = 20;
  p.use_ipi = use_ipi;
  p.faults = plan;
  const double want = workloads::matmul_reference_checksum(p);
  const workloads::MatmulResult r =
      workloads::run_matmul(p, svm::Model::kStrong, cores);
  return close_enough(r.checksum, want) ? Outcome::kCorrect
                                        : Outcome::kWrong;
}

Outcome histogram_once(const sim::FaultPlan& plan, bool use_ipi,
                       int cores) {
  workloads::HistogramParams p;
  p.bins = 64;
  p.samples_per_core = 512;
  p.use_ipi = use_ipi;
  p.faults = plan;
  const std::vector<u64> want = workloads::histogram_reference(p, cores);
  const workloads::HistogramResult r =
      workloads::run_histogram(p, svm::Model::kLazyRelease, cores);
  return r.bins == want ? Outcome::kCorrect : Outcome::kWrong;
}

// ---------------------------------------------------------------------------
// Kill mode: the fail-stop campaign.

struct KillCombo {
  int cores;
  int lanes;
  svm::Model model;
  bool read_replication;
  const char* name;
};

/// {48, 96, 256} cores x {strong, strong+rr, lrc}; 96+ runs the sharded
/// multi-lane scheduler.
constexpr KillCombo kKillCombos[] = {
    {48, 1, svm::Model::kStrong, false, "strong"},
    {48, 1, svm::Model::kStrong, true, "strong+rr"},
    {48, 1, svm::Model::kLazyRelease, false, "lrc"},
    {96, 4, svm::Model::kStrong, false, "strong"},
    {96, 4, svm::Model::kStrong, true, "strong+rr"},
    {96, 4, svm::Model::kLazyRelease, false, "lrc"},
    {256, 8, svm::Model::kStrong, false, "strong"},
    {256, 8, svm::Model::kStrong, true, "strong+rr"},
    {256, 8, svm::Model::kLazyRelease, false, "lrc"},
};

/// 1..3 distinct victims at random ns-aligned virtual times; the times
/// stay ns-aligned so plan.to_spec() round-trips through parse().
sim::FaultPlan random_kill_plan(sim::Rng& rng, u64 plan_seed, int cores) {
  sim::FaultPlan plan;
  plan.seed = plan_seed;
  const u64 nkills = 1 + rng.next_below(3);
  for (u64 k = 0; k < nkills; ++k) {
    sim::KillSpec spec;
    for (;;) {
      spec.core = static_cast<int>(rng.next_below(static_cast<u64>(cores)));
      bool dup = false;
      for (const sim::KillSpec& prev : plan.kills) {
        if (prev.core == spec.core) dup = true;
      }
      if (!dup) break;
    }
    spec.at_ps =
        (200'000 + static_cast<TimePs>(rng.next_below(4'800'000))) * kPsPerNs;
    plan.kills.push_back(spec);
  }
  // Recovery envelope: armed watchdog (hangs must be typed), heartbeat
  // lease (detection), poll sweep + degrade + fast retry as usual.
  plan.watchdog_ps = 500 * kPsPerMs;
  plan.sweep_period = 2;
  plan.degrade_after = 6;
  plan.retry_ps = 2 * kPsPerMs;
  plan.lease_ps = 500 * kPsPerUs;
  return plan;
}

int kill_campaign(int argc, char** argv, u64 seed, u64 num_plans) {
  const int fixed_cores =
      static_cast<int>(bench::arg_u64(argc, argv, "cores", 0));
  const int fixed_lanes =
      static_cast<int>(bench::arg_u64(argc, argv, "lanes", 0));
  const bool audit = bench::arg_flag(argc, argv, "audit");

  bench::print_header(
      "chaos campaign (kill mode): fail-stop deaths under recovery",
      "contract: surviving cores correct, losses typed, hangs clean");

  bench::JsonReport json("chaos_campaign_kill", argc, argv);
  json.config("plans", num_plans);
  if (audit) json.config("audit", u64{1});

  sim::Rng rng = bench::seeded_rng(seed);
  u64 correct = 0;
  u64 clean_hangs = 0;
  u64 data_loss = 0;
  u64 wrong = 0;
  u64 audit_violations = 0;
  u64 recoveries = 0;

  for (u64 i = 0; i < num_plans; ++i) {
    const KillCombo& combo = kKillCombos[i % std::size(kKillCombos)];
    const int cores = fixed_cores > 0 ? fixed_cores : combo.cores;
    workloads::KillMosaicParams p;
    p.sched_lanes = fixed_lanes > 0
                        ? fixed_lanes
                        : (fixed_cores > 0 ? (cores >= 96 ? 4 : 1)
                                           : combo.lanes);
    p.seed = seed * 1000 + i;
    p.read_replication = combo.read_replication;
    p.use_ipi = (i % 2) == 0;
    p.audit = audit;
    p.faults = random_kill_plan(rng, p.seed, cores);
    const std::string spec = p.faults.to_spec();

    std::printf("run %3llu/%llu: %3d cores x%d %-9s %s\n",
                static_cast<unsigned long long>(i + 1),
                static_cast<unsigned long long>(num_plans), cores,
                p.sched_lanes, combo.name, spec.c_str());

    Outcome o = Outcome::kCorrect;
    workloads::KillMosaicResult r;
    try {
      r = workloads::run_kill_mosaic(p, combo.model, cores);
      if (r.slot_mismatches > 0) {
        std::fprintf(stderr, "  WRONG: %llu slot mismatch(es)\n",
                     static_cast<unsigned long long>(r.slot_mismatches));
        o = Outcome::kWrong;
      } else if (r.ranks_lost > 0) {
        o = Outcome::kDataLoss;
      }
      if (audit && r.audit_violations > 0) {
        std::fprintf(stderr, "  AUDIT: %s", r.audit_report.c_str());
        audit_violations += r.audit_violations;
        o = Outcome::kWrong;
      }
      recoveries += r.recoveries;
    } catch (const sim::HangError& e) {
      if (e.report().empty()) {
        std::fprintf(stderr, "  HangError with empty report\n");
        o = Outcome::kWrong;
      } else {
        if (g_print_reports) {
          std::printf("  --- hang report ---\n%s", e.report().c_str());
        }
        o = Outcome::kCleanHang;
      }
    }

    std::printf("  -> %-10s verified=%d lost=%d recoveries=%llu "
                "(rehomed=%llu refetched=%llu poisoned=%llu) "
                "locks_broken=%llu%s\n",
                outcome_name(o), r.ranks_verified, r.ranks_lost,
                static_cast<unsigned long long>(r.recoveries),
                static_cast<unsigned long long>(r.pages_rehomed),
                static_cast<unsigned long long>(r.pages_refetched),
                static_cast<unsigned long long>(r.pages_lost),
                static_cast<unsigned long long>(r.locks_broken),
                audit ? (r.audit_violations == 0 ? " audit=clean"
                                                 : " audit=VIOLATED")
                      : "");
    switch (o) {
      case Outcome::kCorrect: ++correct; break;
      case Outcome::kCleanHang: ++clean_hangs; break;
      case Outcome::kDataLoss: ++data_loss; break;
      case Outcome::kWrong: ++wrong; break;
    }
  }

  const u64 total = correct + clean_hangs + data_loss + wrong;
  bench::print_row_sep();
  std::printf("kill campaign: %llu run(s): %llu correct, %llu typed "
              "data-loss, %llu clean hang(s), %llu WRONG\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(correct),
              static_cast<unsigned long long>(data_loss),
              static_cast<unsigned long long>(clean_hangs),
              static_cast<unsigned long long>(wrong));
  json.sample("correct", static_cast<double>(correct));
  json.sample("data_loss", static_cast<double>(data_loss));
  json.sample("clean_hangs", static_cast<double>(clean_hangs));
  json.sample("wrong", static_cast<double>(wrong));
  json.sample("recoveries", static_cast<double>(recoveries));
  if (audit) json.sample("audit_violations",
                         static_cast<double>(audit_violations));
  if (wrong != 0) {
    std::fprintf(stderr,
                 "kill campaign FAILED: %llu run(s) broke the contract\n",
                 static_cast<unsigned long long>(wrong));
    return 1;
  }
  std::printf("kill campaign passed: every death ended in surviving-core "
              "correctness, a typed loss, or a clean hang%s\n",
              audit ? " (auditor clean)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msvm;
  const u64 seed = bench::arg_seed(argc, argv);
  const u64 num_plans = bench::arg_u64(argc, argv, "plans", 20);
  if (bench::arg_flag(argc, argv, "kill")) {
    g_print_reports = bench::arg_flag(argc, argv, "report");
    return kill_campaign(argc, argv, seed, num_plans);
  }
  const int cores =
      static_cast<int>(bench::arg_u64(argc, argv, "cores", 4));
  const std::string fixed_spec = bench::arg_str(argc, argv, "faults");
  g_print_reports = bench::arg_flag(argc, argv, "report");

  bench::print_header(
      "chaos campaign: workloads under deterministic fault injection",
      "robustness contract: correct data or a typed, reported failure");

  bench::JsonReport json("chaos_campaign", argc, argv);
  json.config("plans", num_plans);
  json.config("cores", static_cast<u64>(cores));
  if (!fixed_spec.empty()) json.config("faults", fixed_spec);

  struct Case {
    const char* name;
    Outcome (*body)(const sim::FaultPlan&, bool, int);
  };
  static constexpr Case kCases[] = {
      {"laplace", laplace_once},
      {"matmul", matmul_once},
      {"histogram", histogram_once},
  };

  sim::Rng rng = bench::seeded_rng(seed);
  u64 correct = 0;
  u64 clean_hangs = 0;
  u64 wrong = 0;

  for (u64 i = 0; i < num_plans; ++i) {
    sim::FaultPlan plan;
    if (!fixed_spec.empty()) {
      plan = bench::arg_faults(argc, argv);
    } else {
      plan = random_plan(rng, seed * 1000 + i);
    }
    const std::string spec = plan.to_spec();
    std::printf("plan %2llu/%llu: %s\n",
                static_cast<unsigned long long>(i + 1),
                static_cast<unsigned long long>(num_plans),
                spec.empty() ? "(no faults)" : spec.c_str());
    for (const Case& c : kCases) {
      for (const bool use_ipi : {true, false}) {
        const Outcome o = guard(c.name, spec, c.body, plan, use_ipi, cores);
        std::printf("  %-9s %-4s -> %s\n", c.name,
                    use_ipi ? "ipi" : "poll", outcome_name(o));
        switch (o) {
          case Outcome::kCorrect: ++correct; break;
          case Outcome::kCleanHang: ++clean_hangs; break;
          case Outcome::kWrong: ++wrong; break;
        }
      }
    }
  }

  const u64 total = correct + clean_hangs + wrong;
  bench::print_row_sep();
  std::printf("campaign: %llu run(s): %llu correct, %llu clean hang(s), "
              "%llu WRONG\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(correct),
              static_cast<unsigned long long>(clean_hangs),
              static_cast<unsigned long long>(wrong));
  json.sample("correct", static_cast<double>(correct));
  json.sample("clean_hangs", static_cast<double>(clean_hangs));
  json.sample("wrong", static_cast<double>(wrong));
  if (wrong != 0) {
    std::fprintf(stderr,
                 "chaos campaign FAILED: %llu run(s) broke the "
                 "correct-or-fail-cleanly contract\n",
                 static_cast<unsigned long long>(wrong));
    return 1;
  }
  std::printf("chaos campaign passed: every run completed correctly or "
              "failed cleanly\n");
  return 0;
}
