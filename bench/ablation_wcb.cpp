// Ablation 2 — the write-combine buffer's bandwidth effect (Section 3:
// "the combine of write through data is extremely useful to increase the
// bandwidth").
//
// One core streams sequential stores over a buffer, once through
// MPBT-typed pages (write-through L1 + WCB, the SVM configuration) and
// once through plain cached write-through pages (the iRCCE variant's
// private memory, where every store is its own DRAM transaction). Also
// sweeps the store width: the WCB advantage is a function of stores per
// 32-byte line.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "sccsim/chip.hpp"

using namespace msvm;

namespace {

struct Outcome {
  TimePs elapsed = 0;
  u64 dram_writes = 0;
};

Outcome run(bool mpbt, u32 store_bytes, u64 total_bytes) {
  scc::ChipConfig cfg;
  cfg.num_cores = 1;
  cfg.shared_dram_bytes = 16 << 20;
  cfg.private_dram_bytes = 1 << 20;
  scc::Chip chip(cfg);
  Outcome out;
  chip.spawn_program(0, [&](scc::Core& core) {
    // Map the target region manually (no SVM needed for this ablation).
    for (u64 off = 0; off < total_bytes; off += cfg.page_bytes) {
      scc::Pte pte;
      pte.frame_paddr = scc::kSharedBase + off;
      pte.present = true;
      pte.writable = true;
      pte.mpbt = mpbt;
      pte.l2_enable = !mpbt;
      core.pagetable().map(scc::kSvmVBase + off, pte);
    }
    const TimePs t0 = core.now();
    const u64 w0 = core.counters().dram_writes;
    for (u64 off = 0; off < total_bytes; off += store_bytes) {
      switch (store_bytes) {
        case 1:
          core.vstore<u8>(scc::kSvmVBase + off, static_cast<u8>(off));
          break;
        case 4:
          core.vstore<u32>(scc::kSvmVBase + off, static_cast<u32>(off));
          break;
        default:
          core.vstore<u64>(scc::kSvmVBase + off, off);
          break;
      }
    }
    core.flush_wcb();
    out.elapsed = core.now() - t0;
    out.dram_writes = core.counters().dram_writes - w0;
  });
  chip.run();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::obs_setup(argc, argv);
  const u64 kb = bench::arg_u64(argc, argv, "kbytes", 256);
  const u64 total = kb << 10;

  bench::print_header(
      "Ablation — write-combine buffer bandwidth",
      "Lankes et al., PMAM'12, Section 3 (WCB) / Section 7.2.2");

  std::printf("streaming %llu KiB of sequential stores\n\n",
              static_cast<unsigned long long>(kb));
  std::printf("%6s | %13s %12s | %13s %12s | %8s\n", "width",
              "WCB [ms]", "DRAM writes", "no-WCB [ms]", "DRAM writes",
              "speedup");
  bench::print_row_sep();
  for (const u32 width : {1u, 4u, 8u}) {
    const Outcome with = run(/*mpbt=*/true, width, total);
    const Outcome without = run(/*mpbt=*/false, width, total);
    std::printf("%5uB | %13.3f %12llu | %13.3f %12llu | %7.2fx\n", width,
                ps_to_ms(with.elapsed),
                static_cast<unsigned long long>(with.dram_writes),
                ps_to_ms(without.elapsed),
                static_cast<unsigned long long>(without.dram_writes),
                static_cast<double>(without.elapsed) /
                    static_cast<double>(with.elapsed));
  }
  bench::print_row_sep();
  std::printf(
      "expected shape: the WCB path issues one DRAM transaction per\n"
      "32-byte line regardless of store width (32/width speedup); the\n"
      "plain write-through path pays one transaction per store.\n");
  return 0;
}
