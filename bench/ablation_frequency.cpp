// Ablation 5 — clock-domain sensitivity. Section 3: "The frequencies of
// the cores and the routers of the mesh are configurable" (cores
// 100-800 MHz, mesh/DRAM 800 or 1600 MHz). This sweep runs the Laplace
// benchmark across core frequencies: the memory-bound fraction of the
// workload does not scale with the core clock, so doubling the core
// frequency yields well under 2x — and the gap is wider for the
// message-passing variant, whose per-store DRAM traffic dominates.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "workloads/laplace.hpp"

using namespace msvm;

int main(int argc, char** argv) {
  bench::obs_setup(argc, argv);
  workloads::LaplaceParams p;
  p.nx = 512;
  p.ny = 128;
  p.iterations = static_cast<u32>(bench::arg_u64(argc, argv, "iters", 4));
  const int cores = static_cast<int>(bench::arg_u64(argc, argv, "cores", 8));

  bench::print_header(
      "Ablation — core frequency sweep (memory-boundedness)",
      "Lankes et al., PMAM'12, Section 3 (configurable clock domains)");
  std::printf("Laplace %ux%u, %d cores, mesh/DRAM fixed at 800 MHz\n\n",
              p.ny, p.nx, cores);

  std::printf("%10s | %12s %10s | %12s %10s\n", "core MHz", "SVM [ms]",
              "vs 533", "iRCCE [ms]", "vs 533");
  bench::print_row_sep();

  // Baselines at the paper's 533 MHz first, so every row prints a ratio.
  workloads::LaplaceParams base_q = p;
  base_q.core_mhz = 533;
  const double svm_base = ps_to_ms(
      workloads::run_laplace_svm(base_q, svm::Model::kLazyRelease, cores)
          .elapsed);
  const double mp_base =
      ps_to_ms(workloads::run_laplace_ircce(base_q, cores).elapsed);
  for (const u32 mhz : {200u, 400u, 533u, 800u}) {
    workloads::LaplaceParams q = p;
    q.core_mhz = mhz;
    const auto svm_r =
        workloads::run_laplace_svm(q, svm::Model::kLazyRelease, cores);
    const auto mp_r = workloads::run_laplace_ircce(q, cores);
    std::printf("%10u | %12.2f %9.2fx | %12.2f %9.2fx\n", mhz,
                ps_to_ms(svm_r.elapsed),
                svm_base / ps_to_ms(svm_r.elapsed),
                ps_to_ms(mp_r.elapsed),
                mp_base / ps_to_ms(mp_r.elapsed));
  }
  bench::print_row_sep();
  std::printf(
      "expected shape: runtime improves sub-linearly with the core clock\n"
      "(the DRAM-bound share is fixed); the effect is strongest for the\n"
      "store-bound message-passing variant.\n");
  return 0;
}
