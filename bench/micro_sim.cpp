// Host-performance microbenchmarks (google-benchmark) for the simulator
// substrate itself: fiber context switches, scheduler turnaround and the
// functional memory pipeline. These measure *host* nanoseconds (how fast
// the simulation runs), not simulated time — they guard the simulator's
// usability for the repo's larger experiments.
#include <benchmark/benchmark.h>

#include "sccsim/chip.hpp"
#include "sim/fiber.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace msvm;

void BM_FiberSwitchRoundTrip(benchmark::State& state) {
  bool stop = false;
  sim::Fiber fiber([&] {
    while (!stop) sim::Fiber::yield_to_main();
  });
  for (auto _ : state) {
    fiber.resume();
  }
  stop = true;
  fiber.resume();
}
BENCHMARK(BM_FiberSwitchRoundTrip);

void BM_SchedulerYieldTwoActors(benchmark::State& state) {
  // Measures a full yield-reschedule-resume cycle with two actors
  // leapfrogging, amortised per yield.
  const u64 yields_per_run = 10000;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler sched;
    for (int a = 0; a < 2; ++a) {
      sched.spawn("actor", [&sched, yields_per_run] {
        for (u64 i = 0; i < yields_per_run; ++i) {
          sched.current()->advance(10);
          sched.yield();
        }
      });
    }
    state.ResumeTiming();
    sched.run();
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 2 *
                          static_cast<i64>(yields_per_run));
}
BENCHMARK(BM_SchedulerYieldTwoActors);

void BM_VloadL1Hit(benchmark::State& state) {
  scc::ChipConfig cfg;
  cfg.num_cores = 1;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  scc::Chip chip(cfg);
  u64 accesses = 0;
  chip.spawn_program(0, [&](scc::Core& core) {
    scc::Pte pte;
    pte.frame_paddr = scc::kSharedBase;
    pte.present = true;
    pte.writable = true;
    pte.mpbt = true;
    core.pagetable().map(scc::kSvmVBase, pte);
    (void)core.vload<u64>(scc::kSvmVBase);  // warm the line
    for (auto _ : state) {
      benchmark::DoNotOptimize(core.vload<u64>(scc::kSvmVBase));
      ++accesses;
    }
  });
  chip.run();
  state.SetItemsProcessed(static_cast<i64>(accesses));
}
BENCHMARK(BM_VloadL1Hit);

void BM_VstoreWcbMerge(benchmark::State& state) {
  scc::ChipConfig cfg;
  cfg.num_cores = 1;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  scc::Chip chip(cfg);
  chip.spawn_program(0, [&](scc::Core& core) {
    scc::Pte pte;
    pte.frame_paddr = scc::kSharedBase;
    pte.present = true;
    pte.writable = true;
    pte.mpbt = true;
    core.pagetable().map(scc::kSvmVBase, pte);
    u64 v = 0;
    for (auto _ : state) {
      core.vstore<u64>(scc::kSvmVBase + (v % 4) * 8, v);
      ++v;
    }
  });
  chip.run();
}
BENCHMARK(BM_VstoreWcbMerge);

void BM_CacheFillEvictSweep(benchmark::State& state) {
  scc::Cache cache(16 * 1024, 2, 32);
  u8 line[32] = {1, 2, 3};
  u64 addr = 0;
  for (auto _ : state) {
    cache.fill(addr, line, false);
    addr += 32;
  }
}
BENCHMARK(BM_CacheFillEvictSweep);

}  // namespace

BENCHMARK_MAIN();
