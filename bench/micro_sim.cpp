// Host-performance microbenchmarks (google-benchmark) for the simulator
// substrate itself: fiber context switches, scheduler turnaround and the
// functional memory pipeline. These measure *host* nanoseconds (how fast
// the simulation runs), not simulated time — they guard the simulator's
// usability for the repo's larger experiments.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "kernel/kernel.hpp"
#include "mailbox/mailbox.hpp"
#include "sccsim/chip.hpp"
#include "sim/fiber.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace msvm;

void BM_FiberSwitchRoundTrip(benchmark::State& state) {
  bool stop = false;
  sim::Fiber fiber([&] {
    while (!stop) sim::Fiber::yield_to_main();
  });
  for (auto _ : state) {
    fiber.resume();
  }
  stop = true;
  fiber.resume();
}
BENCHMARK(BM_FiberSwitchRoundTrip);

void BM_SchedulerYieldTwoActors(benchmark::State& state) {
  // Measures a full yield-reschedule-resume cycle with two actors
  // leapfrogging, amortised per yield.
  const u64 yields_per_run = 10000;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler sched;
    for (int a = 0; a < 2; ++a) {
      sched.spawn("actor", [&sched, yields_per_run] {
        for (u64 i = 0; i < yields_per_run; ++i) {
          sched.current()->advance(10);
          sched.yield();
        }
      });
    }
    state.ResumeTiming();
    sched.run();
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 2 *
                          static_cast<i64>(yields_per_run));
}
BENCHMARK(BM_SchedulerYieldTwoActors);

void BM_VloadL1Hit(benchmark::State& state) {
  scc::ChipConfig cfg;
  cfg.num_cores = 1;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  scc::Chip chip(cfg);
  u64 accesses = 0;
  chip.spawn_program(0, [&](scc::Core& core) {
    scc::Pte pte;
    pte.frame_paddr = scc::kSharedBase;
    pte.present = true;
    pte.writable = true;
    pte.mpbt = true;
    core.pagetable().map(scc::kSvmVBase, pte);
    (void)core.vload<u64>(scc::kSvmVBase);  // warm the line
    for (auto _ : state) {
      benchmark::DoNotOptimize(core.vload<u64>(scc::kSvmVBase));
      ++accesses;
    }
  });
  chip.run();
  state.SetItemsProcessed(static_cast<i64>(accesses));
}
BENCHMARK(BM_VloadL1Hit);

void BM_VstoreWcbMerge(benchmark::State& state) {
  scc::ChipConfig cfg;
  cfg.num_cores = 1;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  scc::Chip chip(cfg);
  chip.spawn_program(0, [&](scc::Core& core) {
    scc::Pte pte;
    pte.frame_paddr = scc::kSharedBase;
    pte.present = true;
    pte.writable = true;
    pte.mpbt = true;
    core.pagetable().map(scc::kSvmVBase, pte);
    u64 v = 0;
    for (auto _ : state) {
      core.vstore<u64>(scc::kSvmVBase + (v % 4) * 8, v);
      ++v;
    }
  });
  chip.run();
}
BENCHMARK(BM_VstoreWcbMerge);

void BM_CacheFillEvictSweep(benchmark::State& state) {
  scc::Cache cache(16 * 1024, 2, 32);
  u8 line[32] = {1, 2, 3};
  u64 addr = 0;
  for (auto _ : state) {
    cache.fill(addr, line, false);
    addr += 32;
  }
}
BENCHMARK(BM_CacheFillEvictSweep);

void BM_SchedulerHeapChurn(benchmark::State& state) {
  // Block/wake churn across many actors: sleepers park on timeouts while
  // a storm actor re-keys random subsets — the workload that exposed the
  // old scheduler's stale-entry (tombstone) growth, where every wake
  // pushed a fresh heap entry and left the superseded one to be popped
  // and skipped later.
  constexpr int kSleepers = 64;
  constexpr u64 kRounds = 100;
  u64 ops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler sched;
    std::vector<sim::Actor*> sleepers;
    for (int i = 0; i < kSleepers; ++i) {
      sleepers.push_back(&sched.spawn("sleeper", [&sched] {
        while (sched.current()->clock() < 500'000) {
          (void)sched.block_until(sched.current()->clock() + 10'000);
        }
      }));
    }
    sched.spawn("storm", [&] {
      u32 lcg = 0xdecafu;
      for (u64 r = 0; r < kRounds; ++r) {
        for (int k = 0; k < kSleepers * 4; ++k) {
          lcg = lcg * 1664525u + 1013904223u;
          sched.wake(*sleepers[lcg % kSleepers],
                     sched.current()->clock() + 1 + lcg % 97);
          ++ops;
        }
        sched.current()->advance(4'000);
        sched.yield();
      }
    });
    state.ResumeTiming();
    sched.run();
  }
  state.SetItemsProcessed(static_cast<i64>(ops));
}
BENCHMARK(BM_SchedulerHeapChurn);

void BM_VloadL1Miss(benchmark::State& state) {
  // Sweep a footprint 4x the L1 so every load misses and pays the full
  // mesh/DRAM pipeline plus the line fill — the slow-path complement of
  // BM_VloadL1Hit.
  scc::ChipConfig cfg;
  cfg.num_cores = 1;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  scc::Chip chip(cfg);
  u64 accesses = 0;
  chip.spawn_program(0, [&](scc::Core& core) {
    const u64 pages = 16;  // 64 KiB footprint vs 16 KiB L1
    for (u64 p = 0; p < pages; ++p) {
      scc::Pte pte;
      pte.frame_paddr = scc::kSharedBase + p * cfg.page_bytes;
      pte.present = true;
      pte.writable = true;
      pte.mpbt = true;
      core.pagetable().map(scc::kSvmVBase + p * cfg.page_bytes, pte);
    }
    const u64 footprint = pages * cfg.page_bytes;
    u64 off = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(core.vload<u64>(scc::kSvmVBase + off));
      off = (off + cfg.line_bytes) % footprint;
      ++accesses;
    }
  });
  chip.run();
  state.SetItemsProcessed(static_cast<i64>(accesses));
}
BENCHMARK(BM_VloadL1Miss);

void BM_MailRoundTrip(benchmark::State& state) {
  // Full mailbox round trip between two cores (poll mode): deposit,
  // flag-spin, consume, reply — the host cost of the communication
  // substrate under the SVM protocol.
  constexpr u8 kPing = 1;
  constexpr u8 kPong = 2;
  scc::ChipConfig cfg;
  cfg.num_cores = 2;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  scc::Chip chip(cfg);
  std::unique_ptr<kernel::Kernel> kernels[2];
  std::unique_ptr<mbox::MailboxSystem> mboxes[2];
  bool stop = false;
  u64 trips = 0;
  chip.spawn_program(0, [&](scc::Core& core) {
    kernels[0] = std::make_unique<kernel::Kernel>(core);
    kernels[0]->boot();
    mboxes[0] =
        std::make_unique<mbox::MailboxSystem>(*kernels[0], false);
    for (auto _ : state) {
      mbox::Mail m;
      m.type = kPing;
      mboxes[0]->send(1, m);
      (void)mboxes[0]->recv_type(kPong);
      ++trips;
    }
    stop = true;
    mbox::Mail m;
    m.type = kPing;  // final ping releases the responder
    mboxes[0]->send(1, m);
  });
  chip.spawn_program(1, [&](scc::Core& core) {
    kernels[1] = std::make_unique<kernel::Kernel>(core);
    kernels[1]->boot();
    mboxes[1] =
        std::make_unique<mbox::MailboxSystem>(*kernels[1], false);
    while (true) {
      (void)mboxes[1]->recv_type(kPing);
      if (stop) break;
      mbox::Mail m;
      m.type = kPong;
      mboxes[1]->send(0, m);
    }
  });
  chip.run();
  state.SetItemsProcessed(static_cast<i64>(trips));
}
BENCHMARK(BM_MailRoundTrip);

}  // namespace

BENCHMARK_MAIN();
