// Table 1: average overhead of the SVM system, Strong Memory Model vs.
// Lazy Release Consistency, measured with the synthetic benchmark of
// Section 7.2.1 on cores 0 and 30 with a 4 MiB region.
//
// Paper values (for shape comparison; absolute numbers depend on the
// authors' 2012 testbed):
//   allocation of 4 MByte            741.0 us      741.0 us
//   physical allocation of a frame   112.301 us    112.296 us
//   mapping of a page frame          10.198 us     2.418 us
//   retrieve the access permission   8.990 us      (n/a)
#include <cstdio>

#include "bench/bench_common.hpp"
#include "workloads/svm_overhead.hpp"

using namespace msvm;

int main(int argc, char** argv) {
  const u64 mbytes = bench::arg_u64(argc, argv, "mbytes", 4);

  bench::print_header("Table 1 — SVM per-page overheads",
                      "Lankes et al., PMAM'12, Section 7.2.1, Table 1");

  workloads::SvmOverheadParams p;
  p.bytes = mbytes << 20;

  p.model = svm::Model::kStrong;
  const auto strong = run_svm_overhead(p);
  p.model = svm::Model::kLazyRelease;
  const auto lazy = run_svm_overhead(p);

  std::printf("%-36s | %12s | %12s | %12s | %12s\n", "", "Strong [us]",
              "Lazy [us]", "paper Strong", "paper Lazy");
  bench::print_row_sep();
  std::printf("%-36s | %12.1f | %12.1f | %12.1f | %12.1f\n",
              "allocation of 4 MByte (total)", ps_to_us(strong.alloc_total),
              ps_to_us(lazy.alloc_total), 741.0, 741.0);
  std::printf("%-36s | %12.3f | %12.3f | %12.3f | %12.3f\n",
              "physical allocation of a page frame",
              ps_to_us(strong.phys_alloc_per_page),
              ps_to_us(lazy.phys_alloc_per_page), 112.301, 112.296);
  std::printf("%-36s | %12.3f | %12.3f | %12.3f | %12.3f\n",
              "mapping of a page frame", ps_to_us(strong.map_per_page),
              ps_to_us(lazy.map_per_page), 10.198, 2.418);
  std::printf("%-36s | %12.3f | %12.3f | %12.3f | %12s\n",
              "retrieve the access permission",
              ps_to_us(strong.retrieve_per_page),
              ps_to_us(lazy.retrieve_per_page), 8.990, "-");
  bench::print_row_sep();
  std::printf(
      "expected shape: rows 1-2 identical across models; strong mapping\n"
      "several times the lazy mapping; permission retrieval exists only\n"
      "under the strong model and is roughly (strong - lazy) mapping.\n");

  bench::JsonReport json("table1", argc, argv);
  json.config("mbytes", mbytes);
  json.sample("strong_alloc_total_us", ps_to_us(strong.alloc_total));
  json.sample("lazy_alloc_total_us", ps_to_us(lazy.alloc_total));
  json.sample("strong_phys_alloc_us", ps_to_us(strong.phys_alloc_per_page));
  json.sample("lazy_phys_alloc_us", ps_to_us(lazy.phys_alloc_per_page));
  json.sample("strong_map_us", ps_to_us(strong.map_per_page));
  json.sample("lazy_map_us", ps_to_us(lazy.map_per_page));
  json.sample("strong_retrieve_us", ps_to_us(strong.retrieve_per_page));
  return 0;
}
