// Figure 6: average mailbox ping-pong latency (half round trip) as a
// function of the mesh distance between the participants, for the
// polling (no-IPI) and the IPI-driven implementation.
//
// Paper findings to reproduce:
//   - latency increases linearly with distance, with a very low gradient;
//   - with only two active cores the polling variant (one receive buffer
//     to check) is *faster* than the interrupt-driven variant, whose
//     latency carries the interrupt entry/exit overhead.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "sccsim/mesh.hpp"
#include "workloads/pingpong.hpp"

using namespace msvm;

int main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::arg_u64(argc, argv, "reps", 200));

  bench::print_header(
      "Figure 6 — mailbox latency vs. mesh distance",
      "Lankes et al., PMAM'12, Section 7.1, Figure 6");

  // Partners of core 0 at every possible hop distance 0..8.
  struct Pair {
    int partner;
    int hops;
  };
  const Pair pairs[] = {
      {1, 0},  {2, 1},  {4, 2},  {6, 3},  {8, 4},
      {10, 5}, {22, 6}, {34, 7}, {46, 8},
  };

  bench::JsonReport json("fig6", argc, argv);
  json.config("reps", static_cast<u64>(reps));

  std::printf("%8s %8s | %16s | %16s\n", "partner", "hops", "no-IPI [us]",
              "IPI [us]");
  bench::print_row_sep();
  for (const Pair& pair : pairs) {
    if (scc::Topology::scc_default().hops_between_cores(0, pair.partner) !=
        pair.hops) {
      std::fprintf(stderr, "internal: unexpected hop count\n");
      return 1;
    }
    workloads::PingPongParams p;
    p.core_a = 0;
    p.core_b = pair.partner;
    p.activated_cores = 2;
    p.reps = reps;

    p.use_ipi = false;
    const TimePs poll = run_mailbox_pingpong(p).half_rtt_mean;
    p.use_ipi = true;
    const TimePs ipi = run_mailbox_pingpong(p).half_rtt_mean;

    std::printf("%8d %8d | %16.3f | %16.3f\n", pair.partner, pair.hops,
                ps_to_us(poll), ps_to_us(ipi));
    json.sample("poll_us", ps_to_us(poll));
    json.sample("ipi_us", ps_to_us(ipi));
  }
  bench::print_row_sep();
  std::printf(
      "expected shape: both curves ~linear in hops with a low gradient;\n"
      "no-IPI below IPI (interrupt overhead) when only 2 cores are "
      "active.\n");
  return 0;
}
