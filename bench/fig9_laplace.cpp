// Figure 9: runtimes of the two-dimensional Laplace (Jacobi
// over-relaxation) benchmark, 1024 x 512 doubles, over the number of
// cores, for three variants:
//   - iRCCE message passing (private arrays + ghost-row exchange),
//   - SVM with the Strong Memory Model,
//   - SVM with Lazy Release Consistency.
//
// Paper findings to reproduce (Section 7.2.2):
//   - the two SVM curves are nearly identical: the strong model's
//     ownership overhead (~2 page faults x ~9 us per iteration) is
//     negligible against the runtime;
//   - the SVM variants beat the message-passing variant up to ~32 cores
//     because their MPBT-typed pages write through the combine buffer
//     while the iRCCE variant pays a DRAM transaction per store;
//   - beyond 32 cores the message-passing variant becomes super-linear:
//     each core's rows start fitting into its private L2, which SVM
//     pages sacrifice for the write-combine buffer.
//
// The paper iterates 5000 times; iteration timing is stationary, so we
// default to 10 iterations and report per-iteration times (override with
// --iters=N).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "workloads/laplace.hpp"

using namespace msvm;

int main(int argc, char** argv) {
  workloads::LaplaceParams p;
  p.nx = 512;
  p.ny = 1024;
  p.iterations = static_cast<u32>(bench::arg_u64(argc, argv, "iters", 10));
  const bool quick = bench::arg_flag(argc, argv, "quick");
  if (quick) {
    p.ny = 128;
    p.iterations = 4;
  }

  bench::print_header(
      "Figure 9 — 2-D Laplace runtimes (1024x512, JOR)",
      "Lankes et al., PMAM'12, Section 7.2.2, Figure 9");
  std::printf("grid %ux%u, %u iterations (paper: 5000; stationary per "
              "iteration)\n\n",
              p.ny, p.nx, p.iterations);

  std::printf("%6s | %12s %9s | %12s %9s | %12s %9s | %10s\n", "cores",
              "iRCCE [ms]", "speedup", "strong [ms]", "speedup",
              "lazy [ms]", "speedup", "strong flt/it/core");
  bench::print_row_sep();

  bench::JsonReport json("fig9", argc, argv);
  json.config("nx", static_cast<u64>(p.nx));
  json.config("ny", static_cast<u64>(p.ny));
  json.config("iterations", static_cast<u64>(p.iterations));

  double base_mp = 0;
  double base_strong = 0;
  double base_lazy = 0;
  const int counts[] = {1, 2, 4, 8, 16, 24, 32, 40, 48};
  for (const int cores : counts) {
    if (quick && cores > 16) break;
    const auto mp = run_laplace_ircce(p, cores);
    const auto strong =
        run_laplace_svm(p, svm::Model::kStrong, cores);
    const auto lazy =
        run_laplace_svm(p, svm::Model::kLazyRelease, cores);
    if (cores == 1) {
      base_mp = ps_to_ms(mp.elapsed);
      base_strong = ps_to_ms(strong.elapsed);
      base_lazy = ps_to_ms(lazy.elapsed);
    }
    const double faults_per_iter =
        static_cast<double>(strong.ownership_acquires) /
        (static_cast<double>(cores) * p.iterations);
    std::printf("%6d | %12.2f %9.2f | %12.2f %9.2f | %12.2f %9.2f | %10.1f\n",
                cores, ps_to_ms(mp.elapsed), base_mp / ps_to_ms(mp.elapsed),
                ps_to_ms(strong.elapsed),
                base_strong / ps_to_ms(strong.elapsed),
                ps_to_ms(lazy.elapsed), base_lazy / ps_to_ms(lazy.elapsed),
                faults_per_iter);
    json.sample("ircce_ms", ps_to_ms(mp.elapsed));
    json.sample("strong_ms", ps_to_ms(strong.elapsed));
    json.sample("lazy_ms", ps_to_ms(lazy.elapsed));
  }
  bench::print_row_sep();
  std::printf(
      "expected shape: strong ~= lazy at every core count; SVM faster\n"
      "than iRCCE up to ~32 cores (write-combine buffer vs. per-store\n"
      "DRAM writes); iRCCE super-linear beyond 32 cores as each core's\n"
      "rows fit in its L2, which SVM pages bypass.\n");
  return 0;
}
