// Ablation 6 — barrier algorithm. The Laplace benchmark synchronises
// with a barrier after every iteration (Section 7.2.2); this sweep
// compares the O(n)-at-master gather/release barrier against an
// O(log n) dissemination barrier over the core count.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/cluster.hpp"

using namespace msvm;

namespace {

TimePs barrier_cost(svm::BarrierAlgo algo, int cores, int reps) {
  cluster::ClusterConfig cfg;
  cfg.chip.num_cores = 48;
  for (int c = 0; c < cores; ++c) cfg.members.push_back(c);
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.barrier_algo = algo;
  cluster::Cluster cl(cfg);
  TimePs per_barrier = 0;
  cl.run([&](cluster::Node& n) {
    (void)n.svm().alloc(4096);  // includes one barrier (warm-up)
    n.svm().barrier();
    const TimePs t0 = n.core().now();
    for (int i = 0; i < reps; ++i) n.svm().barrier();
    if (n.rank() == 0) {
      per_barrier = (n.core().now() - t0) / static_cast<TimePs>(reps);
    }
  });
  return per_barrier;
}

}  // namespace

int main(int argc, char** argv) {
  bench::obs_setup(argc, argv);
  const int reps = static_cast<int>(bench::arg_u64(argc, argv, "reps", 50));

  bench::print_header(
      "Ablation — barrier algorithm (master-gather vs. dissemination)",
      "Lankes et al., PMAM'12, Section 7.2.2 (per-iteration barrier)");

  std::printf("%8s | %20s | %20s | %8s\n", "cores", "master [us]",
              "dissemination [us]", "speedup");
  bench::print_row_sep();
  for (const int cores : {2, 4, 8, 16, 32, 48}) {
    const TimePs master =
        barrier_cost(svm::BarrierAlgo::kMasterGather, cores, reps);
    const TimePs diss =
        barrier_cost(svm::BarrierAlgo::kDissemination, cores, reps);
    std::printf("%8d | %20.3f | %20.3f | %7.2fx\n", cores,
                ps_to_us(master), ps_to_us(diss),
                static_cast<double>(master) / static_cast<double>(diss));
  }
  bench::print_row_sep();
  std::printf(
      "expected shape: the master barrier's cost grows linearly with the\n"
      "core count (the master scans every arrival flag); dissemination\n"
      "grows with log2(n).\n");
  return 0;
}
