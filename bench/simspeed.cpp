// Simulator-throughput benchmark: how fast does the simulation substrate
// run on the host? Emits BENCH_simspeed.json with host events/sec and
// sim-seconds-per-wall-second per subsystem, wired into the perf gate's
// host-throughput mode (tools/check_perf_regression.sh): the virtual-time
// fields are compared exactly (determinism), the throughput medians with
// a generous noise margin.
//
// Four workloads, one per hot subsystem:
//   sched — two-actor yield leapfrog through the event core
//   churn — block/wake storm across 64 actors (heap re-keying)
//   mem   — L1-hit load/store loop through the inlined fast path
//   mail  — two-core mailbox ping-pong (deposit/poll/consume/reply)
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "kernel/kernel.hpp"
#include "mailbox/mailbox.hpp"
#include "sccsim/chip.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace msvm;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  u64 events = 0;        // host-side event count (deterministic)
  TimePs makespan = 0;   // virtual time covered (deterministic)
  double wall_s = 0.0;   // host seconds (noisy)
};

RunResult run_sched() {
  RunResult r;
  const double t0 = now_s();
  sim::Scheduler sched;
  constexpr int kActors = 4;
  constexpr u64 kYields = 50'000;
  for (int a = 0; a < kActors; ++a) {
    sched.spawn("actor", [&sched, &r] {
      for (u64 i = 0; i < kYields; ++i) {
        sched.current()->advance(10);
        sched.yield();
        ++r.events;
      }
      r.makespan = std::max(r.makespan, sched.current()->clock());
    });
  }
  sched.run();
  r.wall_s = now_s() - t0;
  return r;
}

RunResult run_churn() {
  RunResult r;
  const double t0 = now_s();
  sim::Scheduler sched;
  constexpr int kSleepers = 64;
  constexpr u64 kRounds = 400;
  std::vector<sim::Actor*> sleepers;
  for (int i = 0; i < kSleepers; ++i) {
    sleepers.push_back(&sched.spawn("sleeper", [&sched, &r] {
      while (sched.current()->clock() < 2'000'000) {
        (void)sched.block_until(sched.current()->clock() + 10'000);
        ++r.events;
      }
      r.makespan = std::max(r.makespan, sched.current()->clock());
    }));
  }
  sched.spawn("storm", [&] {
    u32 lcg = 0xdecafu;
    for (u64 round = 0; round < kRounds; ++round) {
      for (int k = 0; k < kSleepers * 4; ++k) {
        lcg = lcg * 1664525u + 1013904223u;
        sched.wake(*sleepers[lcg % kSleepers],
                   sched.current()->clock() + 1 + lcg % 97);
        ++r.events;
      }
      sched.current()->advance(4'000);
      sched.yield();
    }
  });
  sched.run();
  r.wall_s = now_s() - t0;
  return r;
}

RunResult run_mem() {
  RunResult r;
  const double t0 = now_s();
  scc::ChipConfig cfg;
  cfg.num_cores = 1;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  scc::Chip chip(cfg);
  chip.spawn_program(0, [&](scc::Core& core) {
    scc::Pte pte;
    pte.frame_paddr = scc::kSharedBase;
    pte.present = true;
    pte.writable = true;
    pte.mpbt = true;
    core.pagetable().map(scc::kSvmVBase, pte);
    (void)core.vload<u64>(scc::kSvmVBase);  // warm the line
    constexpr u64 kAccesses = 400'000;
    u64 acc = 0;
    for (u64 i = 0; i < kAccesses; ++i) {
      acc += core.vload<u64>(scc::kSvmVBase + (i & 3) * 8);
      core.vstore<u64>(scc::kSvmVBase + (i & 3) * 8, acc);
    }
    r.events = 2 * kAccesses;
    r.makespan = core.now();
  });
  chip.run();
  r.wall_s = now_s() - t0;
  return r;
}

RunResult run_mail() {
  RunResult r;
  const double t0 = now_s();
  constexpr u8 kPing = 1;
  constexpr u8 kPong = 2;
  constexpr u64 kTrips = 2'000;
  scc::ChipConfig cfg;
  cfg.num_cores = 2;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  scc::Chip chip(cfg);
  std::unique_ptr<kernel::Kernel> kernels[2];
  std::unique_ptr<mbox::MailboxSystem> mboxes[2];
  chip.spawn_program(0, [&](scc::Core& core) {
    kernels[0] = std::make_unique<kernel::Kernel>(core);
    kernels[0]->boot();
    mboxes[0] =
        std::make_unique<mbox::MailboxSystem>(*kernels[0], false);
    for (u64 i = 0; i < kTrips; ++i) {
      mbox::Mail m;
      m.type = kPing;
      mboxes[0]->send(1, m);
      (void)mboxes[0]->recv_type(kPong);
      ++r.events;
    }
    r.makespan = core.now();
  });
  chip.spawn_program(1, [&](scc::Core& core) {
    kernels[1] = std::make_unique<kernel::Kernel>(core);
    kernels[1]->boot();
    mboxes[1] =
        std::make_unique<mbox::MailboxSystem>(*kernels[1], false);
    for (u64 i = 0; i < kTrips; ++i) {
      (void)mboxes[1]->recv_type(kPing);
      mbox::Mail m;
      m.type = kPong;
      mboxes[1]->send(0, m);
    }
  });
  chip.run();
  r.wall_s = now_s() - t0;
  return r;
}

struct Workload {
  const char* name;
  RunResult (*run)();
};

constexpr Workload kWorkloads[] = {
    {"sched", run_sched},
    {"churn", run_churn},
    {"mem", run_mem},
    {"mail", run_mail},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace msvm::bench;
  const u64 repeats = arg_u64(argc, argv, "repeats", 5);
  JsonReport report("simspeed", argc, argv);
  report.config("repeats", repeats);

  print_header("simspeed: host throughput of the simulation substrate",
               "simulator infrastructure (not a paper figure)");
  std::printf("%-8s %14s %16s %14s\n", "workload", "events",
              "events/sec", "simsec/wallsec");
  print_row_sep();

  for (const Workload& w : kWorkloads) {
    u64 events = 0;
    TimePs makespan = 0;
    double best_eps = 0.0;
    double best_ratio = 0.0;
    for (u64 rep = 0; rep < repeats; ++rep) {
      const RunResult r = w.run();
      if (rep == 0) {
        events = r.events;
        makespan = r.makespan;
      } else if (events != r.events || makespan != r.makespan) {
        std::fprintf(stderr,
                     "simspeed: %s is nondeterministic across repeats\n",
                     w.name);
        return 1;
      }
      const double eps = static_cast<double>(r.events) / r.wall_s;
      const double ratio =
          (static_cast<double>(r.makespan) / 1e12) / r.wall_s;
      best_eps = std::max(best_eps, eps);
      best_ratio = std::max(best_ratio, ratio);
      report.sample(std::string(w.name) + "_events_per_sec", eps);
      report.sample(std::string(w.name) + "_simsec_per_wallsec", ratio);
    }
    // Deterministic fields the gate compares exactly.
    report.config(std::string(w.name) + "_events", events);
    report.config(std::string(w.name) + "_makespan_ps",
                  static_cast<u64>(makespan));
    std::printf("%-8s %14llu %16.3g %14.3g\n", w.name,
                static_cast<unsigned long long>(events), best_eps,
                best_ratio);
  }
  print_row_sep();
  std::printf("(medians and p95s land in BENCH_simspeed.json; the perf\n"
              " gate compares events/sec with a generous noise margin and\n"
              " the events/makespan fields exactly)\n");
  return 0;
}
