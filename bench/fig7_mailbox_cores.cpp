// Figure 7: average mailbox latency between cores 0 and 30 (5 hops) as a
// function of the number of activated cores, for three configurations:
//   (1) polling / no IPI          — grows with the activated-core count,
//                                   every receive buffer is scanned;
//   (2) IPI                       — nearly constant;
//   (3) IPI + background noise    — the remaining activated cores mail
//                                   each other permanently; latency stays
//                                   on the same level as (2).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "workloads/pingpong.hpp"

using namespace msvm;

int main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::arg_u64(argc, argv, "reps", 150));

  bench::print_header(
      "Figure 7 — mailbox latency core 0 <-> 30 vs. activated cores",
      "Lankes et al., PMAM'12, Section 7.1, Figure 7");

  bench::JsonReport json("fig7", argc, argv);
  json.config("reps", static_cast<u64>(reps));

  std::printf("%10s | %14s | %14s | %18s\n", "activated", "no-IPI [us]",
              "IPI [us]", "IPI+noise [us]");
  bench::print_row_sep();

  for (const int activated : {2, 4, 8, 16, 24, 32, 40, 48}) {
    workloads::PingPongParams p;
    p.core_a = 0;
    p.core_b = 30;  // 5 hops, as in the paper
    p.activated_cores = activated;
    p.reps = reps;

    p.use_ipi = false;
    p.background_noise = false;
    const TimePs poll = run_mailbox_pingpong(p).half_rtt_mean;

    p.use_ipi = true;
    const TimePs ipi = run_mailbox_pingpong(p).half_rtt_mean;

    p.background_noise = true;
    const TimePs noisy =
        activated > 2 ? run_mailbox_pingpong(p).half_rtt_mean : ipi;

    std::printf("%10d | %14.3f | %14.3f | %18.3f\n", activated,
                ps_to_us(poll), ps_to_us(ipi), ps_to_us(noisy));
    json.sample("poll_us", ps_to_us(poll));
    json.sample("ipi_us", ps_to_us(ipi));
    json.sample("ipi_noise_us", ps_to_us(noisy));
  }
  bench::print_row_sep();
  std::printf(
      "expected shape: no-IPI grows ~linearly with the activated cores;\n"
      "IPI stays flat; background noise leaves the IPI latency on a\n"
      "similar level up to 48 cores.\n");
  return 0;
}
