// Served-traffic benchmark: the sharded SVM-backed KV store under an
// open-loop Zipfian workload (see src/serve/). The default sweep runs
// {strong, strong+rr, lrc} x core counts x read mixes at a moderate
// offered rate, plus one saturating cell per model, and reports the
// request-latency distribution (p50/p95/p99/p999, microseconds) and
// goodput per cell into BENCH_kv.json. Latency is measured open-loop —
// from *intended* arrival to completion — so queueing delay at
// saturation lands in the tail instead of being coordinated-omitted
// away.
//
//   ./kv_serving                      # full sweep
//   ./kv_serving --quick --cores=8    # smoke-sized
//   ./kv_serving --cores=96 --lanes=4 # one off-sweep cell
//
// Kill mode (`--kill`) runs the serving tier's fail-stop campaign:
// seeded runs cycling {48x1, 96x4} cores x the three models, each
// killing 1..3 random cores mid-serve under the heartbeat-lease
// envelope. The contract is graceful degradation: fewer completions
// (typed shed/timeout losses), ZERO wrong responses, zero silent
// hangs. Every reply is verified against the self-verifying value
// scheme, so corruption anywhere in the stack is detected, not served.
//
//   ./kv_serving --kill --plans=6 --seed=1
#include <cstdio>
#include <iterator>
#include <string>

#include "bench/bench_common.hpp"
#include "serve/kv_serving.hpp"

namespace {

using namespace msvm;

struct ModelCase {
  svm::Model model;
  bool read_replication;
  const char* name;
};

constexpr ModelCase kModels[] = {
    {svm::Model::kStrong, false, "strong"},
    {svm::Model::kStrong, true, "strong_rr"},
    {svm::Model::kLazyRelease, false, "lrc"},
};

serve::KvServingParams base_params(u64 seed, int lanes) {
  serve::KvServingParams p;
  p.seed = seed;
  p.store.seed = seed;
  p.sched_lanes = lanes;
  p.gen.num_keys = 4096;
  p.gen.zipf_theta = 0.99;
  p.gen.scan_fraction = 0.02;
  p.gen.scan_len = 8;
  return p;
}

double ps_to_us(double ps) { return ps / 1e6; }

int sweep(int argc, char** argv) {
  const u64 seed = bench::arg_seed(argc, argv);
  const bool quick = bench::arg_flag(argc, argv, "quick");
  const int fixed_cores =
      static_cast<int>(bench::arg_u64(argc, argv, "cores", 0));
  const int lanes =
      static_cast<int>(bench::arg_u64(argc, argv, "lanes", 1));

  bench::print_header(
      "kv serving: sharded SVM KV store under open-loop Zipfian load",
      "serving tier (DESIGN.md section 14); latency us, open loop");
  bench::obs_setup(argc, argv);
  bench::JsonReport json("kv", seed);
  if (quick) json.config("quick", u64{1});
  json.config("lanes", static_cast<u64>(lanes));

  // Offered load is fixed per *tier*, split across the generator cores:
  // per-core serving capacity falls as the core count grows (mesh
  // distance, IPI fan-in), so a fixed per-core rate would quietly push
  // the bigger sweeps past saturation. The moderate aggregate sits well
  // below the tier's measured saturation throughput at every sweep
  // size; the sat cells overdrive it several-fold so the tail shows
  // queueing delay.
  const double kModerateAggRps = quick ? 150'000.0 : 300'000.0;
  const double kSatAggRps = 12'000'000.0;
  const TimePs load_ps = quick ? 500 * kPsPerUs : 2 * kPsPerMs;

  const int default_cores[] = {8, 48};
  std::vector<int> core_counts;
  if (fixed_cores > 0) {
    core_counts.push_back(fixed_cores);
  } else if (quick) {
    core_counts.push_back(8);
  } else {
    core_counts.assign(std::begin(default_cores),
                       std::end(default_cores));
  }
  json.config("load_us", static_cast<u64>(load_ps / kPsPerUs));

  const double mixes[] = {0.5, 0.95};
  u64 wrong_total = 0;

  std::printf("%-24s %10s %10s %10s %10s %12s\n", "cell", "p50us",
              "p95us", "p99us", "p999us", "goodput_rps");
  bench::print_row_sep();

  for (const int cores : core_counts) {
    for (const ModelCase& mc : kModels) {
      for (const double mix : mixes) {
        serve::KvServingParams p = base_params(seed, lanes);
        p.read_replication = mc.read_replication;
        p.gen.read_fraction = mix;
        p.gen.rate_rps = kModerateAggRps / cores;
        p.gen.load_ps = load_ps;
        // A mild diurnal cycle: quiet, ramp, burst, plateau.
        p.gen.phase_mults = {0.5, 1.0, 2.0, 1.0};
        p.gen.phase_ps = load_ps / 4;
        const serve::KvServingResult r =
            serve::run_kv_serving(p, mc.model, cores);
        wrong_total += r.wrong;

        char cell[64];
        std::snprintf(cell, sizeof(cell), "%s_c%d_r%02d", mc.name, cores,
                      static_cast<int>(mix * 100));
        const double p50 = ps_to_us(r.latency.p50());
        const double p95 = ps_to_us(r.latency.p95());
        const double p99 = ps_to_us(r.latency.p99());
        const double p999 = ps_to_us(r.latency.p999());
        std::printf("%-24s %10.2f %10.2f %10.2f %10.2f %12.0f\n", cell,
                    p50, p95, p99, p999, r.goodput_rps);
        json.sample(std::string(cell) + "_p50_us", p50);
        json.sample(std::string(cell) + "_p95_us", p95);
        json.sample(std::string(cell) + "_p99_us", p99);
        json.sample(std::string(cell) + "_p999_us", p999);
        json.sample(std::string(cell) + "_rps", r.goodput_rps);
      }

      // Saturation cell: overdriven open loop, read-heavy. Goodput here
      // is the tier's saturation throughput for this model; the latency
      // tail is dominated by queueing delay.
      serve::KvServingParams p = base_params(seed, lanes);
      p.read_replication = mc.read_replication;
      p.gen.read_fraction = 0.95;
      p.gen.rate_rps = kSatAggRps / cores;
      p.gen.load_ps = load_ps;
      p.drain_ps = 1 * kPsPerMs;
      const serve::KvServingResult r =
          serve::run_kv_serving(p, mc.model, cores);
      wrong_total += r.wrong;
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%s_c%d_sat", mc.name, cores);
      std::printf("%-24s %10.2f %10.2f %10.2f %10.2f %12.0f\n", cell,
                  ps_to_us(r.latency.p50()), ps_to_us(r.latency.p95()),
                  ps_to_us(r.latency.p99()), ps_to_us(r.latency.p999()),
                  r.goodput_rps);
      json.sample(std::string(cell) + "_p999_us",
                  ps_to_us(r.latency.p999()));
      json.sample(std::string(cell) + "_rps", r.goodput_rps);
    }
  }

  bench::print_row_sep();
  if (wrong_total != 0) {
    std::fprintf(stderr,
                 "kv serving FAILED: %llu wrong response(s) on a clean "
                 "run\n",
                 static_cast<unsigned long long>(wrong_total));
    return 1;
  }
  std::printf("kv serving: every reply verified against the derived "
              "value scheme (0 wrong)\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Kill mode.

enum class Outcome { kCorrect, kTypedLoss, kCleanHang, kWrong };

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCorrect: return "correct";
    case Outcome::kTypedLoss: return "typed-loss";
    case Outcome::kCleanHang: return "clean-hang";
    case Outcome::kWrong: return "WRONG";
  }
  return "?";
}

struct KillCombo {
  int cores;
  int lanes;
};
constexpr KillCombo kKillCombos[] = {{48, 1}, {96, 4}};

/// 1..3 distinct victims inside the serve window (offset past the start
/// epoch so deaths land under live traffic), under the heartbeat-lease
/// recovery envelope (same shape as chaos_campaign's kill plans).
sim::FaultPlan random_kill_plan(sim::Rng& rng, u64 plan_seed, int cores,
                                TimePs epoch_ps, TimePs load_ps) {
  sim::FaultPlan plan;
  plan.seed = plan_seed;
  const u64 nkills = 1 + rng.next_below(3);
  const u64 epoch_ns = static_cast<u64>(epoch_ps / kPsPerNs);
  const u64 window_ns = static_cast<u64>(load_ps / kPsPerNs);
  for (u64 k = 0; k < nkills; ++k) {
    sim::KillSpec spec;
    for (;;) {
      spec.core = static_cast<int>(rng.next_below(static_cast<u64>(cores)));
      bool dup = false;
      for (const sim::KillSpec& prev : plan.kills) {
        if (prev.core == spec.core) dup = true;
      }
      if (!dup) break;
    }
    // ns-aligned, within [10%, 90%] of the load window.
    spec.at_ps = static_cast<TimePs>(epoch_ns + window_ns / 10 +
                                     rng.next_below(window_ns * 8 / 10)) *
                 kPsPerNs;
    plan.kills.push_back(spec);
  }
  plan.watchdog_ps = 500 * kPsPerMs;
  plan.sweep_period = 2;
  plan.degrade_after = 6;
  plan.retry_ps = 2 * kPsPerMs;
  plan.lease_ps = 500 * kPsPerUs;
  return plan;
}

int kill_campaign(int argc, char** argv) {
  const u64 seed = bench::arg_seed(argc, argv);
  const u64 num_plans = bench::arg_u64(argc, argv, "plans", 6);
  const int fixed_cores =
      static_cast<int>(bench::arg_u64(argc, argv, "cores", 0));
  const int fixed_lanes =
      static_cast<int>(bench::arg_u64(argc, argv, "lanes", 0));

  bench::print_header(
      "kv serving (kill mode): fail-stop homes under live traffic",
      "contract: degraded goodput, typed losses, ZERO wrong responses");
  bench::obs_setup(argc, argv);
  bench::JsonReport json("kv_kill", seed);
  json.config("plans", num_plans);

  sim::Rng rng = bench::seeded_rng(seed);
  u64 correct = 0, typed_loss = 0, clean_hangs = 0, wrong = 0;
  u64 completed = 0, shed = 0;

  for (u64 i = 0; i < num_plans; ++i) {
    const KillCombo& combo = kKillCombos[i % std::size(kKillCombos)];
    const ModelCase& mc = kModels[(i / std::size(kKillCombos)) %
                                  std::size(kModels)];
    const int cores = fixed_cores > 0 ? fixed_cores : combo.cores;
    const int lanes =
        fixed_lanes > 0
            ? fixed_lanes
            : (fixed_cores > 0 ? (cores >= 96 ? 4 : 1) : combo.lanes);

    serve::KvServingParams p = base_params(seed * 1000 + i, lanes);
    p.read_replication = mc.read_replication;
    p.gen.read_fraction = 0.9;
    p.gen.rate_rps = 20'000.0;
    p.gen.load_ps = 1 * kPsPerMs;
    p.drain_ps = 1 * kPsPerMs;
    p.use_ipi = (i % 2) == 0;
    p.faults = random_kill_plan(rng, p.seed, cores, p.start_epoch_ps,
                                p.gen.load_ps);
    const std::string spec = p.faults.to_spec();

    std::printf("run %2llu/%llu: %3d cores x%d %-9s %s %s\n",
                static_cast<unsigned long long>(i + 1),
                static_cast<unsigned long long>(num_plans), cores, lanes,
                mc.name, p.use_ipi ? "ipi" : "poll", spec.c_str());

    Outcome o = Outcome::kCorrect;
    serve::KvServingResult r;
    try {
      r = serve::run_kv_serving(p, mc.model, cores);
      completed += r.completed;
      shed += r.dead_shed + r.timeouts;
      if (r.wrong > 0) {
        std::fprintf(stderr, "  WRONG: %llu bad response(s)\n",
                     static_cast<unsigned long long>(r.wrong));
        o = Outcome::kWrong;
      } else if (r.ranks_lost > 0 || !r.failures.empty() ||
                 r.dead_shed + r.timeouts > 0) {
        o = Outcome::kTypedLoss;
      }
    } catch (const sim::HangError& e) {
      if (e.report().empty()) {
        std::fprintf(stderr, "  HangError with empty report\n");
        o = Outcome::kWrong;
      } else {
        o = Outcome::kCleanHang;
      }
    }

    std::printf("  -> %-10s completed=%llu wrong=%llu shed=%llu "
                "timeouts=%llu retransmits=%llu lost_ranks=%d "
                "recoveries=%llu\n",
                outcome_name(o),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.wrong),
                static_cast<unsigned long long>(r.dead_shed),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.retransmits),
                r.ranks_lost,
                static_cast<unsigned long long>(r.recoveries));
    switch (o) {
      case Outcome::kCorrect: ++correct; break;
      case Outcome::kTypedLoss: ++typed_loss; break;
      case Outcome::kCleanHang: ++clean_hangs; break;
      case Outcome::kWrong: ++wrong; break;
    }
  }

  bench::print_row_sep();
  std::printf("kv kill campaign: %llu run(s): %llu correct, %llu typed "
              "loss, %llu clean hang(s), %llu WRONG\n",
              static_cast<unsigned long long>(num_plans),
              static_cast<unsigned long long>(correct),
              static_cast<unsigned long long>(typed_loss),
              static_cast<unsigned long long>(clean_hangs),
              static_cast<unsigned long long>(wrong));
  json.sample("correct", static_cast<double>(correct));
  json.sample("typed_loss", static_cast<double>(typed_loss));
  json.sample("clean_hangs", static_cast<double>(clean_hangs));
  json.sample("wrong", static_cast<double>(wrong));
  json.sample("completed", static_cast<double>(completed));
  json.sample("shed", static_cast<double>(shed));
  // The serving contract is stricter than the shared-memory campaign's:
  // a clean hang is also a failure here — the tier is built barrier-free
  // and fail-fast precisely so that deaths cannot wedge survivors.
  if (wrong != 0 || clean_hangs != 0) {
    std::fprintf(stderr,
                 "kv kill campaign FAILED: %llu wrong, %llu hang(s)\n",
                 static_cast<unsigned long long>(wrong),
                 static_cast<unsigned long long>(clean_hangs));
    return 1;
  }
  std::printf("kv kill campaign passed: every death degraded gracefully "
              "(0 wrong responses, 0 hangs)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msvm;
  if (bench::arg_flag(argc, argv, "kill")) {
    return kill_campaign(argc, argv);
  }
  return sweep(argc, argv);
}
