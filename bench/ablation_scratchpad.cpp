// Ablation 3 — the first-touch scratchpad (Section 6.3), two trade-offs:
//
//  (a) location: on-die (in the MPBs, the paper's design, which limits
//      shared memory to 256 MiB) vs. relocated into off-die DRAM, which
//      "increases the number of memory accesses, which in turn decreases
//      the performance". The effect shows on the *mapping* path, where
//      the scratchpad lookup is a large share of the ~2.4 us cost.
//  (b) locking: the paper guards the scratchpad with a single
//      Test-and-Set lock; a first-touch storm from many cores serialises
//      on it. Striping the lock recovers scalability.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/cluster.hpp"

using namespace msvm;

namespace {

/// Mapping-path cost: rank 0 pre-allocates every page, then rank 1 maps
/// them (read faults, Lazy Release: scratchpad lookup + PTE install).
TimePs map_cost_per_page(bool offdie, u64 pages) {
  cluster::ClusterConfig cfg;
  cfg.chip.num_cores = 48;
  cfg.members = {0, 30};
  cfg.chip.shared_dram_bytes = 32 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.scratchpad_offdie = offdie;
  cluster::Cluster cl(cfg);
  TimePs cost = 0;
  const u64 page = cfg.chip.page_bytes;
  cl.run([&](cluster::Node& n) {
    const u64 base = n.svm().alloc(pages * page);
    if (n.rank() == 0) {
      for (u64 p = 0; p < pages; ++p) {
        n.core().vstore<u32>(base + p * page, 1);
      }
    }
    n.svm().barrier();
    if (n.rank() == 1) {
      const TimePs t0 = n.core().now();
      for (u64 p = 0; p < pages; ++p) {
        (void)n.core().vload<u32>(base + p * page);
      }
      cost = (n.core().now() - t0) / pages;
    }
    n.svm().barrier();
  });
  return cost;
}

/// First-touch storm: every core touches its own slice concurrently.
TimePs storm_cost_per_page(u32 stripes, int cores, u64 pages_per_core) {
  cluster::ClusterConfig cfg;
  cfg.chip.num_cores = 48;
  for (int c = 0; c < cores; ++c) cfg.members.push_back(c);
  cfg.chip.shared_dram_bytes = 64 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.scratchpad_lock_stripes = stripes;
  cluster::Cluster cl(cfg);
  TimePs cost = 0;
  const u64 page = cfg.chip.page_bytes;
  cl.run([&](cluster::Node& n) {
    const u64 bytes = pages_per_core * page * static_cast<u64>(n.size());
    const u64 base = n.svm().alloc(bytes);
    n.svm().barrier();
    const u64 mine =
        base + static_cast<u64>(n.rank()) * pages_per_core * page;
    const TimePs t0 = n.core().now();
    for (u64 p = 0; p < pages_per_core; ++p) {
      n.core().vstore<u32>(mine + p * page, 1);
    }
    const TimePs mine_elapsed = n.core().now() - t0;
    n.svm().barrier();
    if (n.rank() == 0) cost = mine_elapsed / pages_per_core;
  });
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  bench::obs_setup(argc, argv);
  const u64 pages = bench::arg_u64(argc, argv, "pages", 512);

  bench::print_header(
      "Ablation — first-touch scratchpad: location and locking",
      "Lankes et al., PMAM'12, Section 6.3");

  std::printf("(a) mapping an already-allocated page, cores 0 and 30:\n");
  const TimePs ondie = map_cost_per_page(false, pages);
  const TimePs offdie = map_cost_per_page(true, pages);
  std::printf("    on-die scratchpad : %8.3f us/page\n", ps_to_us(ondie));
  std::printf("    off-die scratchpad: %8.3f us/page  (%.2fx)\n",
              ps_to_us(offdie),
              static_cast<double>(offdie) / static_cast<double>(ondie));

  std::printf("\n(b) first-touch storm, all cores allocating at once "
              "(32 pages/core):\n");
  std::printf("%8s | %16s | %16s\n", "cores", "1 lock [us/page]",
              "16 stripes [us/page]");
  bench::print_row_sep();
  for (const int cores : {2, 8, 24, 48}) {
    const TimePs one = storm_cost_per_page(1, cores, 32);
    const TimePs sixteen = storm_cost_per_page(16, cores, 32);
    std::printf("%8d | %16.3f | %16.3f\n", cores, ps_to_us(one),
                ps_to_us(sixteen));
  }
  bench::print_row_sep();
  std::printf(
      "expected shape: (a) the off-die scratchpad makes mapping\n"
      "measurably slower (DRAM round trip instead of on-die MPB read);\n"
      "(b) the paper's single lock serialises the storm linearly in the\n"
      "core count; striping flattens it.\n");
  return 0;
}
