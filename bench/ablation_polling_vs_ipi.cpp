// Ablation 1 — requester-side waiting policy for ownership transfers:
// mailbox ACK (the paper's design) vs. polling the off-die owner vector
// (the authors' earlier prototype [14], which "runs against the so-called
// memory wall and doesn't scale very well").
//
// The memory wall is a *scalability* failure: one polling requester is
// harmless, but every concurrently-waiting core hammers the off-die
// owner vector, and with the memory-controller contention model enabled
// the polls of all pairs queue behind each other. Setup: N independent
// core pairs (one coherency domain each), every pair running the
// Table-1-row-4 ownership ping-pong over its own region simultaneously.
// Reported: mean permission-retrieval latency across pairs.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "cluster/cluster.hpp"

using namespace msvm;

namespace {

TimePs run(bool ack_via_mail, int pairs, u64 pages) {
  cluster::ClusterConfig cfg;
  cfg.chip.num_cores = 48;
  cfg.chip.shared_dram_bytes = 32 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.chip.mc_contention = true;
  // Random DDR3 reads with bank management occupy the controller for
  // ~60 ns, not the streaming-burst default.
  cfg.chip.mc_service_mesh_cycles = 48;
  cfg.svm.model = svm::Model::kStrong;
  cfg.svm.ack_via_mail = ack_via_mail;
  for (int p = 0; p < pairs; ++p) {
    cfg.domains.push_back({2 * p, 2 * p + 1});
  }
  cluster::Cluster cl(cfg);

  std::vector<TimePs> per_pair(static_cast<std::size_t>(pairs), 0);
  const u64 page = cfg.chip.page_bytes;

  cl.run([&](cluster::Node& n) {
    scc::Core& core = n.core();
    const bool is_even = n.rank() == 0;
    const u64 base = n.svm().alloc(pages * page);
    n.svm().barrier();
    // Warm-up: even core allocates, odd core maps + takes ownership.
    if (is_even) {
      for (u64 p = 0; p < pages; ++p) core.vstore<u32>(base + p * page, 1);
    }
    n.svm().barrier();
    if (!is_even) {
      for (u64 p = 0; p < pages; ++p) core.vstore<u32>(base + p * page, 2);
    }
    n.svm().barrier();
    // Measured phase, concurrently in every pair: the even core
    // re-acquires all its pages.
    if (is_even) {
      const TimePs t0 = core.now();
      for (u64 p = 0; p < pages; ++p) core.vstore<u32>(base + p * page, 3);
      per_pair[static_cast<std::size_t>(n.core_id() / 2)] =
          (core.now() - t0) / pages;
    }
    n.svm().barrier();
  });

  TimePs sum = 0;
  for (const TimePs t : per_pair) sum += t;
  return sum / static_cast<TimePs>(pairs);
}

}  // namespace

int main(int argc, char** argv) {
  bench::obs_setup(argc, argv);
  const u64 pages = bench::arg_u64(argc, argv, "pages", 128);

  bench::print_header(
      "Ablation — ownership wait: mailbox ACK vs. owner-vector polling",
      "Lankes et al., PMAM'12, Sections 2 & 6.1 (comparison with [14])");
  std::printf("%llu transfers per pair, all pairs concurrent, MC "
              "contention on\n\n",
              static_cast<unsigned long long>(pages));

  std::printf("%8s | %20s | %24s | %8s\n", "pairs",
              "retrieve (mail) [us]", "retrieve (polling) [us]",
              "penalty");
  bench::print_row_sep();
  for (const int pairs : {1, 4, 12, 24}) {
    const TimePs mail = run(/*ack_via_mail=*/true, pairs, pages);
    const TimePs poll = run(/*ack_via_mail=*/false, pairs, pages);
    std::printf("%8d | %20.3f | %24.3f | %7.2fx\n", pairs, ps_to_us(mail),
                ps_to_us(poll),
                static_cast<double>(poll) / static_cast<double>(mail));
  }
  bench::print_row_sep();
  std::printf(
      "expected shape: with one pair the two waits cost about the same\n"
      "(polling even slightly less — no ACK mail); as concurrent pairs\n"
      "multiply, the pollers' owner-vector reads saturate the memory\n"
      "controller and the polling latency inflates — the memory wall the\n"
      "mailbox design removes.\n");
  return 0;
}
