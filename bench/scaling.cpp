// Scaling bench: SVM consistency models past the SCC's 48 cores.
//
// The paper evaluates on one 48-core die — the hardware's ceiling, not
// the model's. This sweep grows the chip grid (configure_cores) and runs
// {Strong, Strong+read-replication, LRC} on the Laplace and matmul
// workloads at 48..1024 cores, the range where DiSquawk-style systems
// operate, emitting the scaling curves into BENCH_scaling.json (one
// series per workload x model x count, diffable across commits).
//
// Flags:
//   --cores=N   run a single core count instead of the sweep
//   --lanes=N   event lanes for the sharded scheduler (default 4)
//   --iters=N   Laplace iterations (default 3)
//   --quick     CI smoke: counts {48, 256} on a smaller grid
//   --metrics   also fold lane-utilization counters into the JSON
//
// Expected shape: LRC scales furthest (no ownership round-trips); Strong
// pays per-fault mail latency that grows with mesh diameter; read
// replication recovers most of the gap on these read-mostly sharing
// patterns at the price of multicast invalidations.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "workloads/laplace.hpp"
#include "workloads/matmul.hpp"

using namespace msvm;

namespace {

struct Variant {
  const char* name;
  svm::Model model;
  bool read_replication;
};

constexpr Variant kVariants[] = {
    {"strong", svm::Model::kStrong, false},
    {"strong_rr", svm::Model::kStrong, true},
    {"lrc", svm::Model::kLazyRelease, false},
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::arg_flag(argc, argv, "quick");
  const int lanes =
      static_cast<int>(bench::arg_u64(argc, argv, "lanes", 4));
  const int only = bench::arg_cores(argc, argv, /*fallback=*/0);

  std::vector<int> counts;
  if (only > 0) {
    counts.push_back(only);
  } else if (quick) {
    counts = {48, 256};
  } else {
    counts = {48, 96, 192, 256, 512, 1024};
  }

  workloads::LaplaceParams lp;
  lp.nx = 512;
  lp.ny = quick ? 512 : 1024;
  lp.iterations =
      static_cast<u32>(bench::arg_u64(argc, argv, "iters", quick ? 2 : 3));
  lp.sched_lanes = lanes;

  workloads::MatmulParams mp;
  mp.n = quick ? 64 : 128;
  mp.sched_lanes = lanes;

  bench::print_header(
      "Scaling — SVM models past 48 cores (multi-chip grids)",
      "DiSquawk-scale extension of Lankes et al., PMAM'12, Section 7.2");
  std::printf("laplace %ux%u x%u iters, matmul %ux%u, %d event lane(s)\n\n",
              lp.ny, lp.nx, lp.iterations, mp.n, mp.n, lanes);

  bench::JsonReport json("scaling", bench::arg_seed(argc, argv));
  bench::obs_setup(argc, argv);
  json.config("laplace_nx", static_cast<u64>(lp.nx));
  json.config("laplace_ny", static_cast<u64>(lp.ny));
  json.config("laplace_iters", static_cast<u64>(lp.iterations));
  json.config("matmul_n", static_cast<u64>(mp.n));
  json.config("lanes", static_cast<u64>(lanes));
  {
    std::string swept;
    for (const int c : counts) {
      if (!swept.empty()) swept += ",";
      swept += std::to_string(c);
    }
    json.config("cores_swept", swept);
  }
  if (only > 0) {
    json.topology(scc::TopologySpec::for_cores(only), only);
  }

  std::printf("%6s | %12s %12s %12s | %12s %12s %12s\n", "cores",
              "lapl str", "lapl s+rr", "lapl lrc", "mm str", "mm s+rr",
              "mm lrc");
  std::printf("%6s | %38s | %38s\n", "", "[ms]", "[ms]");
  bench::print_row_sep();

  for (const int cores : counts) {
    double lapl_ms[3];
    double mm_ms[3];
    for (int v = 0; v < 3; ++v) {
      const Variant& var = kVariants[v];
      lp.read_replication = var.read_replication;
      const auto lr = run_laplace_svm(lp, var.model, cores);
      lapl_ms[v] = ps_to_ms(lr.elapsed);
      json.sample("laplace_" + std::string(var.name) + "_c" +
                      std::to_string(cores) + "_ms",
                  lapl_ms[v]);

      mp.read_replication = var.read_replication;
      const auto mr = run_matmul(mp, var.model, cores);
      mm_ms[v] = ps_to_ms(mr.elapsed);
      json.sample("matmul_" + std::string(var.name) + "_c" +
                      std::to_string(cores) + "_ms",
                  mm_ms[v]);
    }
    std::printf("%6d | %12.2f %12.2f %12.2f | %12.2f %12.2f %12.2f\n",
                cores, lapl_ms[0], lapl_ms[1], lapl_ms[2], mm_ms[0],
                mm_ms[1], mm_ms[2]);
    json.write();  // flush after every count: long sweeps stay diffable
  }
  bench::print_row_sep();
  std::printf(
      "expected shape: LRC degrades most gracefully with the mesh\n"
      "diameter; strong pays ownership round-trips per fault; read\n"
      "replication recovers most of the strong-model gap on these\n"
      "read-mostly patterns.\n");
  return 0;
}
