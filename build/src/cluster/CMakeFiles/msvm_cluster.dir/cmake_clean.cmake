file(REMOVE_RECURSE
  "CMakeFiles/msvm_cluster.dir/cluster.cpp.o"
  "CMakeFiles/msvm_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/msvm_cluster.dir/report.cpp.o"
  "CMakeFiles/msvm_cluster.dir/report.cpp.o.d"
  "libmsvm_cluster.a"
  "libmsvm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msvm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
