# Empty dependencies file for msvm_cluster.
# This may be replaced when dependencies are built.
