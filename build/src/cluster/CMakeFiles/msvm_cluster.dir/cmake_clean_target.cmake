file(REMOVE_RECURSE
  "libmsvm_cluster.a"
)
