file(REMOVE_RECURSE
  "libmsvm_svm.a"
)
