# Empty dependencies file for msvm_svm.
# This may be replaced when dependencies are built.
