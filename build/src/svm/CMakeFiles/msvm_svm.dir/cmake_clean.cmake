file(REMOVE_RECURSE
  "CMakeFiles/msvm_svm.dir/svm.cpp.o"
  "CMakeFiles/msvm_svm.dir/svm.cpp.o.d"
  "libmsvm_svm.a"
  "libmsvm_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msvm_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
