file(REMOVE_RECURSE
  "libmsvm_kernel.a"
)
