file(REMOVE_RECURSE
  "CMakeFiles/msvm_kernel.dir/kernel.cpp.o"
  "CMakeFiles/msvm_kernel.dir/kernel.cpp.o.d"
  "libmsvm_kernel.a"
  "libmsvm_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msvm_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
