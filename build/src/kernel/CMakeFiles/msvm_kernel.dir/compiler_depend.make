# Empty compiler generated dependencies file for msvm_kernel.
# This may be replaced when dependencies are built.
