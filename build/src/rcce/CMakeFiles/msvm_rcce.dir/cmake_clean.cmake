file(REMOVE_RECURSE
  "CMakeFiles/msvm_rcce.dir/rcce.cpp.o"
  "CMakeFiles/msvm_rcce.dir/rcce.cpp.o.d"
  "libmsvm_rcce.a"
  "libmsvm_rcce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msvm_rcce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
