file(REMOVE_RECURSE
  "libmsvm_rcce.a"
)
