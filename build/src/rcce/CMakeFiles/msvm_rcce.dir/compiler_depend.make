# Empty compiler generated dependencies file for msvm_rcce.
# This may be replaced when dependencies are built.
