file(REMOVE_RECURSE
  "libmsvm_workloads.a"
)
