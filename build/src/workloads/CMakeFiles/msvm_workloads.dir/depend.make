# Empty dependencies file for msvm_workloads.
# This may be replaced when dependencies are built.
