file(REMOVE_RECURSE
  "CMakeFiles/msvm_workloads.dir/histogram.cpp.o"
  "CMakeFiles/msvm_workloads.dir/histogram.cpp.o.d"
  "CMakeFiles/msvm_workloads.dir/laplace.cpp.o"
  "CMakeFiles/msvm_workloads.dir/laplace.cpp.o.d"
  "CMakeFiles/msvm_workloads.dir/matmul.cpp.o"
  "CMakeFiles/msvm_workloads.dir/matmul.cpp.o.d"
  "CMakeFiles/msvm_workloads.dir/pingpong.cpp.o"
  "CMakeFiles/msvm_workloads.dir/pingpong.cpp.o.d"
  "CMakeFiles/msvm_workloads.dir/svm_overhead.cpp.o"
  "CMakeFiles/msvm_workloads.dir/svm_overhead.cpp.o.d"
  "libmsvm_workloads.a"
  "libmsvm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msvm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
