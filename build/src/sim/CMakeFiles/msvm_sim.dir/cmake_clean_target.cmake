file(REMOVE_RECURSE
  "libmsvm_sim.a"
)
