# Empty compiler generated dependencies file for msvm_sim.
# This may be replaced when dependencies are built.
