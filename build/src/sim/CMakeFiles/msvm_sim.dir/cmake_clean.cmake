file(REMOVE_RECURSE
  "CMakeFiles/msvm_sim.dir/fiber.cpp.o"
  "CMakeFiles/msvm_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/msvm_sim.dir/log.cpp.o"
  "CMakeFiles/msvm_sim.dir/log.cpp.o.d"
  "CMakeFiles/msvm_sim.dir/scheduler.cpp.o"
  "CMakeFiles/msvm_sim.dir/scheduler.cpp.o.d"
  "libmsvm_sim.a"
  "libmsvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
