# Empty compiler generated dependencies file for msvm_mailbox.
# This may be replaced when dependencies are built.
