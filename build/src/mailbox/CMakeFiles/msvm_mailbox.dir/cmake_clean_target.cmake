file(REMOVE_RECURSE
  "libmsvm_mailbox.a"
)
