file(REMOVE_RECURSE
  "CMakeFiles/msvm_mailbox.dir/mailbox.cpp.o"
  "CMakeFiles/msvm_mailbox.dir/mailbox.cpp.o.d"
  "libmsvm_mailbox.a"
  "libmsvm_mailbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msvm_mailbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
