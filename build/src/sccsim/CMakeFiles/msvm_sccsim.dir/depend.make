# Empty dependencies file for msvm_sccsim.
# This may be replaced when dependencies are built.
