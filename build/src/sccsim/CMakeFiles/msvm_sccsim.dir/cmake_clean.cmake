file(REMOVE_RECURSE
  "CMakeFiles/msvm_sccsim.dir/chip.cpp.o"
  "CMakeFiles/msvm_sccsim.dir/chip.cpp.o.d"
  "CMakeFiles/msvm_sccsim.dir/core.cpp.o"
  "CMakeFiles/msvm_sccsim.dir/core.cpp.o.d"
  "libmsvm_sccsim.a"
  "libmsvm_sccsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msvm_sccsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
