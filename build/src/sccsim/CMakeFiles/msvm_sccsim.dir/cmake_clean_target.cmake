file(REMOVE_RECURSE
  "libmsvm_sccsim.a"
)
