file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_report.dir/cluster/report_test.cpp.o"
  "CMakeFiles/test_cluster_report.dir/cluster/report_test.cpp.o.d"
  "test_cluster_report"
  "test_cluster_report.pdb"
  "test_cluster_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
