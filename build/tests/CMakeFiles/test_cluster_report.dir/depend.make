# Empty dependencies file for test_cluster_report.
# This may be replaced when dependencies are built.
