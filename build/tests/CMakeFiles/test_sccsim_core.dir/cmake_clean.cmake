file(REMOVE_RECURSE
  "CMakeFiles/test_sccsim_core.dir/sccsim/core_test.cpp.o"
  "CMakeFiles/test_sccsim_core.dir/sccsim/core_test.cpp.o.d"
  "test_sccsim_core"
  "test_sccsim_core.pdb"
  "test_sccsim_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sccsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
