file(REMOVE_RECURSE
  "CMakeFiles/test_sim_util.dir/sim/util_test.cpp.o"
  "CMakeFiles/test_sim_util.dir/sim/util_test.cpp.o.d"
  "test_sim_util"
  "test_sim_util.pdb"
  "test_sim_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
