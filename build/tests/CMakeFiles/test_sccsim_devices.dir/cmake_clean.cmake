file(REMOVE_RECURSE
  "CMakeFiles/test_sccsim_devices.dir/sccsim/devices_test.cpp.o"
  "CMakeFiles/test_sccsim_devices.dir/sccsim/devices_test.cpp.o.d"
  "test_sccsim_devices"
  "test_sccsim_devices.pdb"
  "test_sccsim_devices[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sccsim_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
