# Empty compiler generated dependencies file for test_sccsim_devices.
# This may be replaced when dependencies are built.
