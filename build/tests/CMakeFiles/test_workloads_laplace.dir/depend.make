# Empty dependencies file for test_workloads_laplace.
# This may be replaced when dependencies are built.
