file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_laplace.dir/workloads/laplace_test.cpp.o"
  "CMakeFiles/test_workloads_laplace.dir/workloads/laplace_test.cpp.o.d"
  "test_workloads_laplace"
  "test_workloads_laplace.pdb"
  "test_workloads_laplace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
