file(REMOVE_RECURSE
  "CMakeFiles/test_svm_property.dir/svm/svm_property_test.cpp.o"
  "CMakeFiles/test_svm_property.dir/svm/svm_property_test.cpp.o.d"
  "test_svm_property"
  "test_svm_property.pdb"
  "test_svm_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svm_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
