# Empty dependencies file for test_svm_property.
# This may be replaced when dependencies are built.
