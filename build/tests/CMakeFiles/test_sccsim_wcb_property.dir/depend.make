# Empty dependencies file for test_sccsim_wcb_property.
# This may be replaced when dependencies are built.
