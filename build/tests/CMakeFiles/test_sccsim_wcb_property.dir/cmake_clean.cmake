file(REMOVE_RECURSE
  "CMakeFiles/test_sccsim_wcb_property.dir/sccsim/wcb_property_test.cpp.o"
  "CMakeFiles/test_sccsim_wcb_property.dir/sccsim/wcb_property_test.cpp.o.d"
  "test_sccsim_wcb_property"
  "test_sccsim_wcb_property.pdb"
  "test_sccsim_wcb_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sccsim_wcb_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
