# Empty compiler generated dependencies file for test_sccsim_cache_property.
# This may be replaced when dependencies are built.
