file(REMOVE_RECURSE
  "CMakeFiles/test_svm_edge.dir/svm/svm_edge_test.cpp.o"
  "CMakeFiles/test_svm_edge.dir/svm/svm_edge_test.cpp.o.d"
  "test_svm_edge"
  "test_svm_edge.pdb"
  "test_svm_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svm_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
