file(REMOVE_RECURSE
  "CMakeFiles/test_svm_fault_injection.dir/svm/svm_fault_injection_test.cpp.o"
  "CMakeFiles/test_svm_fault_injection.dir/svm/svm_fault_injection_test.cpp.o.d"
  "test_svm_fault_injection"
  "test_svm_fault_injection.pdb"
  "test_svm_fault_injection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svm_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
