file(REMOVE_RECURSE
  "CMakeFiles/test_rcce.dir/rcce/rcce_test.cpp.o"
  "CMakeFiles/test_rcce.dir/rcce/rcce_test.cpp.o.d"
  "test_rcce"
  "test_rcce.pdb"
  "test_rcce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
