file(REMOVE_RECURSE
  "CMakeFiles/test_sccsim_mesh.dir/sccsim/mesh_test.cpp.o"
  "CMakeFiles/test_sccsim_mesh.dir/sccsim/mesh_test.cpp.o.d"
  "test_sccsim_mesh"
  "test_sccsim_mesh.pdb"
  "test_sccsim_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sccsim_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
