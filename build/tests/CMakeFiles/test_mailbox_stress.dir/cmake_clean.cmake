file(REMOVE_RECURSE
  "CMakeFiles/test_mailbox_stress.dir/mailbox/mailbox_stress_test.cpp.o"
  "CMakeFiles/test_mailbox_stress.dir/mailbox/mailbox_stress_test.cpp.o.d"
  "test_mailbox_stress"
  "test_mailbox_stress.pdb"
  "test_mailbox_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mailbox_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
