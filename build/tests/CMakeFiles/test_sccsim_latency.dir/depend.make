# Empty dependencies file for test_sccsim_latency.
# This may be replaced when dependencies are built.
