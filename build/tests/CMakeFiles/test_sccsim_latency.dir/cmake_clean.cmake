file(REMOVE_RECURSE
  "CMakeFiles/test_sccsim_latency.dir/sccsim/latency_test.cpp.o"
  "CMakeFiles/test_sccsim_latency.dir/sccsim/latency_test.cpp.o.d"
  "test_sccsim_latency"
  "test_sccsim_latency.pdb"
  "test_sccsim_latency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sccsim_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
