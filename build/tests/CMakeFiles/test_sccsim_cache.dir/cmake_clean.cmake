file(REMOVE_RECURSE
  "CMakeFiles/test_sccsim_cache.dir/sccsim/cache_test.cpp.o"
  "CMakeFiles/test_sccsim_cache.dir/sccsim/cache_test.cpp.o.d"
  "test_sccsim_cache"
  "test_sccsim_cache.pdb"
  "test_sccsim_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sccsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
