# Empty dependencies file for test_sccsim_cache.
# This may be replaced when dependencies are built.
