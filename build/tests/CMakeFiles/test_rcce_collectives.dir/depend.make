# Empty dependencies file for test_rcce_collectives.
# This may be replaced when dependencies are built.
