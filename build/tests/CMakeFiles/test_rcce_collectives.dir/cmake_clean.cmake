file(REMOVE_RECURSE
  "CMakeFiles/test_rcce_collectives.dir/rcce/rcce_collectives_test.cpp.o"
  "CMakeFiles/test_rcce_collectives.dir/rcce/rcce_collectives_test.cpp.o.d"
  "test_rcce_collectives"
  "test_rcce_collectives.pdb"
  "test_rcce_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcce_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
