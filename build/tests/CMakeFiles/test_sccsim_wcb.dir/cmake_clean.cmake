file(REMOVE_RECURSE
  "CMakeFiles/test_sccsim_wcb.dir/sccsim/wcb_test.cpp.o"
  "CMakeFiles/test_sccsim_wcb.dir/sccsim/wcb_test.cpp.o.d"
  "test_sccsim_wcb"
  "test_sccsim_wcb.pdb"
  "test_sccsim_wcb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sccsim_wcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
