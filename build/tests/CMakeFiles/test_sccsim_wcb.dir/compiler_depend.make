# Empty compiler generated dependencies file for test_sccsim_wcb.
# This may be replaced when dependencies are built.
