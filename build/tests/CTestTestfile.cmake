# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_fiber[1]_include.cmake")
include("/root/repo/build/tests/test_sim_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_sim_util[1]_include.cmake")
include("/root/repo/build/tests/test_sccsim_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_sccsim_cache[1]_include.cmake")
include("/root/repo/build/tests/test_sccsim_wcb[1]_include.cmake")
include("/root/repo/build/tests/test_sccsim_core[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_mailbox[1]_include.cmake")
include("/root/repo/build/tests/test_rcce[1]_include.cmake")
include("/root/repo/build/tests/test_svm[1]_include.cmake")
include("/root/repo/build/tests/test_workloads_laplace[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_svm_fault_injection[1]_include.cmake")
include("/root/repo/build/tests/test_sccsim_cache_property[1]_include.cmake")
include("/root/repo/build/tests/test_sccsim_wcb_property[1]_include.cmake")
include("/root/repo/build/tests/test_svm_property[1]_include.cmake")
include("/root/repo/build/tests/test_rcce_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_mailbox_stress[1]_include.cmake")
include("/root/repo/build/tests/test_svm_edge[1]_include.cmake")
include("/root/repo/build/tests/test_sccsim_latency[1]_include.cmake")
include("/root/repo/build/tests/test_sccsim_devices[1]_include.cmake")
include("/root/repo/build/tests/test_cluster_report[1]_include.cmake")
