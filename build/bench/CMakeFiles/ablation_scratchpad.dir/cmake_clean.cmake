file(REMOVE_RECURSE
  "CMakeFiles/ablation_scratchpad.dir/ablation_scratchpad.cpp.o"
  "CMakeFiles/ablation_scratchpad.dir/ablation_scratchpad.cpp.o.d"
  "ablation_scratchpad"
  "ablation_scratchpad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scratchpad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
