# Empty compiler generated dependencies file for ablation_scratchpad.
# This may be replaced when dependencies are built.
