file(REMOVE_RECURSE
  "CMakeFiles/ablation_polling_vs_ipi.dir/ablation_polling_vs_ipi.cpp.o"
  "CMakeFiles/ablation_polling_vs_ipi.dir/ablation_polling_vs_ipi.cpp.o.d"
  "ablation_polling_vs_ipi"
  "ablation_polling_vs_ipi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_polling_vs_ipi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
