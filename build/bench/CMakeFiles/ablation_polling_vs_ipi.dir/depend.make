# Empty dependencies file for ablation_polling_vs_ipi.
# This may be replaced when dependencies are built.
