# Empty dependencies file for fig7_mailbox_cores.
# This may be replaced when dependencies are built.
