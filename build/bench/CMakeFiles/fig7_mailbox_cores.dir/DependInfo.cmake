
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_mailbox_cores.cpp" "bench/CMakeFiles/fig7_mailbox_cores.dir/fig7_mailbox_cores.cpp.o" "gcc" "bench/CMakeFiles/fig7_mailbox_cores.dir/fig7_mailbox_cores.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/msvm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/msvm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/svm/CMakeFiles/msvm_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/rcce/CMakeFiles/msvm_rcce.dir/DependInfo.cmake"
  "/root/repo/build/src/mailbox/CMakeFiles/msvm_mailbox.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/msvm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sccsim/CMakeFiles/msvm_sccsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msvm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
