file(REMOVE_RECURSE
  "CMakeFiles/fig7_mailbox_cores.dir/fig7_mailbox_cores.cpp.o"
  "CMakeFiles/fig7_mailbox_cores.dir/fig7_mailbox_cores.cpp.o.d"
  "fig7_mailbox_cores"
  "fig7_mailbox_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mailbox_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
