# Empty compiler generated dependencies file for ablation_wcb.
# This may be replaced when dependencies are built.
