file(REMOVE_RECURSE
  "CMakeFiles/ablation_wcb.dir/ablation_wcb.cpp.o"
  "CMakeFiles/ablation_wcb.dir/ablation_wcb.cpp.o.d"
  "ablation_wcb"
  "ablation_wcb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
