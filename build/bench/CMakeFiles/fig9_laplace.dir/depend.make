# Empty dependencies file for fig9_laplace.
# This may be replaced when dependencies are built.
