file(REMOVE_RECURSE
  "CMakeFiles/fig9_laplace.dir/fig9_laplace.cpp.o"
  "CMakeFiles/fig9_laplace.dir/fig9_laplace.cpp.o.d"
  "fig9_laplace"
  "fig9_laplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
