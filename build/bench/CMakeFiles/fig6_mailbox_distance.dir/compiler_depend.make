# Empty compiler generated dependencies file for fig6_mailbox_distance.
# This may be replaced when dependencies are built.
