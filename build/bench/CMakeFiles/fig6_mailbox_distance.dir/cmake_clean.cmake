file(REMOVE_RECURSE
  "CMakeFiles/fig6_mailbox_distance.dir/fig6_mailbox_distance.cpp.o"
  "CMakeFiles/fig6_mailbox_distance.dir/fig6_mailbox_distance.cpp.o.d"
  "fig6_mailbox_distance"
  "fig6_mailbox_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mailbox_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
