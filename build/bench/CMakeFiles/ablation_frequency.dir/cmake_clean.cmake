file(REMOVE_RECURSE
  "CMakeFiles/ablation_frequency.dir/ablation_frequency.cpp.o"
  "CMakeFiles/ablation_frequency.dir/ablation_frequency.cpp.o.d"
  "ablation_frequency"
  "ablation_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
