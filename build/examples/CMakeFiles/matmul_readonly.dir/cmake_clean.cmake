file(REMOVE_RECURSE
  "CMakeFiles/matmul_readonly.dir/matmul_readonly.cpp.o"
  "CMakeFiles/matmul_readonly.dir/matmul_readonly.cpp.o.d"
  "matmul_readonly"
  "matmul_readonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_readonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
