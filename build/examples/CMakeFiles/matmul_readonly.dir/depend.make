# Empty dependencies file for matmul_readonly.
# This may be replaced when dependencies are built.
