file(REMOVE_RECURSE
  "CMakeFiles/mailbox_pingpong.dir/mailbox_pingpong.cpp.o"
  "CMakeFiles/mailbox_pingpong.dir/mailbox_pingpong.cpp.o.d"
  "mailbox_pingpong"
  "mailbox_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mailbox_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
