# Empty dependencies file for mailbox_pingpong.
# This may be replaced when dependencies are built.
