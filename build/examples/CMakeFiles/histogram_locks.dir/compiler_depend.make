# Empty compiler generated dependencies file for histogram_locks.
# This may be replaced when dependencies are built.
