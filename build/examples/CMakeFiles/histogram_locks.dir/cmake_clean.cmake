file(REMOVE_RECURSE
  "CMakeFiles/histogram_locks.dir/histogram_locks.cpp.o"
  "CMakeFiles/histogram_locks.dir/histogram_locks.cpp.o.d"
  "histogram_locks"
  "histogram_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
