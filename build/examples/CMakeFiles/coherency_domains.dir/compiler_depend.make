# Empty compiler generated dependencies file for coherency_domains.
# This may be replaced when dependencies are built.
