file(REMOVE_RECURSE
  "CMakeFiles/coherency_domains.dir/coherency_domains.cpp.o"
  "CMakeFiles/coherency_domains.dir/coherency_domains.cpp.o.d"
  "coherency_domains"
  "coherency_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherency_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
